#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include <random>

#include "util/expect.hpp"

#include "pipedream/pipedream.hpp"
#include "report/plan_report.hpp"
#include "schedule/one_f_one_b.hpp"

namespace madpipe {
namespace {

Chain random_chain(unsigned seed, int length) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dur(1.0, 15.0);
  std::uniform_real_distribution<double> size(5.0, 80.0);
  std::vector<Layer> layers;
  for (int i = 0; i < length; ++i) {
    layers.push_back(Layer{"r" + std::to_string(i), ms(dur(rng)),
                           ms(dur(rng)), size(rng) * MB, size(rng) * MB});
  }
  return Chain("random" + std::to_string(seed), size(rng) * MB,
               std::move(layers));
}

std::vector<Stage> even_split(const Chain& chain, int stages) {
  std::vector<Stage> result;
  const int per = (chain.length() + stages - 1) / stages;
  for (int first = 1; first <= chain.length(); first += per) {
    result.push_back({first, std::min(chain.length(), first + per - 1)});
  }
  return result;
}

TEST(EventSim, BatchCompletionsAreMonotone) {
  const Chain c = random_chain(1, 8);
  const Platform p{4, 100 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 4), 4);
  const auto plan = plan_one_f_one_b(a, c, p);
  ASSERT_TRUE(plan.has_value());
  const auto sim = simulate_pattern(plan->pattern, a, c, p, {32});
  for (std::size_t b = 1; b < sim.batch_completion.size(); ++b) {
    EXPECT_GT(sim.batch_completion[b], sim.batch_completion[b - 1]);
  }
  EXPECT_DOUBLE_EQ(sim.makespan, sim.batch_completion.back());
}

class SimAgreesWithPattern : public ::testing::TestWithParam<unsigned> {};

// The ASAP execution of a valid pattern can only be as fast or faster than
// the pattern's period, and its memory cannot exceed what the verifier
// certified for the pattern (earlier execution can only free earlier).
TEST_P(SimAgreesWithPattern, ThroughputAndMemoryBounds) {
  const unsigned seed = GetParam();
  const Chain c = random_chain(seed, 6 + seed % 5);
  const int procs = 2 + seed % 3;
  if (c.length() < procs) GTEST_SKIP();
  const Platform p{procs, (1.5 + seed % 4) * GB, 12 * GB};
  const Allocation a =
      make_contiguous_allocation(c, even_split(c, procs), procs);
  const auto plan = plan_one_f_one_b(a, c, p);
  if (!plan) GTEST_SKIP() << "infeasible configuration";

  const auto check = validate_pattern(plan->pattern, a, c, p);
  ASSERT_TRUE(check.valid);

  const auto sim = simulate_pattern(plan->pattern, a, c, p, {64});
  EXPECT_LE(sim.steady_period, plan->period() * (1.0 + 1e-6));
  for (int proc = 0; proc < procs; ++proc) {
    EXPECT_LE(sim.processor_memory_peak[proc],
              check.processor_memory_peak[proc] * (1.0 + 1e-9))
        << "processor " << proc;
  }
}

// The introspection report reuses the verifier's event sweep, so on any
// valid pattern — not just the zoo networks test_plan_report.cpp covers —
// its per-GPU watermark is the verifier's number bit for bit, and the ASAP
// execution stays within it.
TEST_P(SimAgreesWithPattern, PlanReportPeaksMatchVerifierBitForBit) {
  const unsigned seed = GetParam();
  const Chain c = random_chain(seed, 6 + seed % 5);
  const int procs = 2 + seed % 3;
  if (c.length() < procs) GTEST_SKIP();
  const Platform p{procs, (1.5 + seed % 4) * GB, 12 * GB};
  const Allocation a =
      make_contiguous_allocation(c, even_split(c, procs), procs);
  const auto plan = plan_one_f_one_b(a, c, p);
  if (!plan) GTEST_SKIP() << "infeasible configuration";

  const auto check = validate_pattern(plan->pattern, a, c, p);
  ASSERT_TRUE(check.valid);

  report::PlanReportOptions options;
  options.run_simulation = false;
  const report::PlanReport rep = report::build_plan_report(*plan, c, p, options);
  const auto sim = simulate_pattern(plan->pattern, a, c, p, {64});
  ASSERT_EQ(rep.memory.size(), static_cast<std::size_t>(procs));
  for (int proc = 0; proc < procs; ++proc) {
    EXPECT_EQ(rep.memory[proc].peak_bytes, check.processor_memory_peak[proc])
        << "processor " << proc;
    EXPECT_LE(sim.processor_memory_peak[proc],
              rep.memory[proc].peak_bytes * (1.0 + 1e-9))
        << "processor " << proc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimAgreesWithPattern,
                         ::testing::Range(50u, 70u));

TEST(EventSim, SteadyPeriodMatchesBottleneck) {
  // Balanced two-stage pipeline without memory pressure: the simulated
  // steady period equals the bottleneck stage load.
  const Chain c = make_uniform_chain(4, ms(5), ms(10), MB, MB, MB);
  const Platform p{2, 100 * GB, 1e6 * GB};
  const Allocation a = make_contiguous_allocation(c, {{1, 2}, {3, 4}}, 2);
  const auto plan = plan_one_f_one_b(a, c, p);
  ASSERT_TRUE(plan.has_value());
  const auto sim = simulate_pattern(plan->pattern, a, c, p, {64});
  EXPECT_NEAR(sim.steady_period, ms(30), ms(0.01));
}

TEST(EventSim, RequiresTwoBatches) {
  const Chain c = make_uniform_chain(2, ms(1), ms(1), MB, MB, MB);
  const Platform p{2, 100 * GB, 1e6 * GB};
  const Allocation a = make_contiguous_allocation(c, {{1, 1}, {2, 2}}, 2);
  const auto plan = plan_one_f_one_b(a, c, p);
  ASSERT_TRUE(plan.has_value());
  EXPECT_THROW(simulate_pattern(plan->pattern, a, c, p, {1}),
               ContractViolation);
}

TEST(EventSim, WorksOnPipeDreamPlans) {
  const Chain c = random_chain(3, 10);
  const Platform p{4, 3 * GB, 12 * GB};
  const auto plan = plan_pipedream(c, p);
  if (!plan) GTEST_SKIP();
  const auto sim =
      simulate_pattern(plan->pattern, plan->allocation, c, p, {48});
  EXPECT_LE(sim.steady_period, plan->period() * (1.0 + 1e-6));
}


TEST(EventSim, UtilizationBoundedAndBottleneckSaturated) {
  // Balanced two-stage pipeline: in steady state both GPUs are (nearly)
  // fully busy; the near-idle link shows a tiny utilization.
  const Chain c = make_uniform_chain(4, ms(5), ms(10), MB, MB, MB);
  const Platform p{2, 100 * GB, 1e6 * GB};
  const Allocation a = make_contiguous_allocation(c, {{1, 2}, {3, 4}}, 2);
  const auto plan = plan_one_f_one_b(a, c, p);
  ASSERT_TRUE(plan.has_value());
  const auto sim = simulate_pattern(plan->pattern, a, c, p, {64});
  ASSERT_FALSE(sim.resource_utilization.empty());
  for (const auto& [resource, value] : sim.resource_utilization) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0 + 1e-9) << resource.to_string();
  }
  EXPECT_GT(sim.utilization_of(ResourceId::processor(0)), 0.95);
  EXPECT_GT(sim.utilization_of(ResourceId::processor(1)), 0.95);
  EXPECT_LT(sim.utilization_of(ResourceId::link(0, 1)), 0.05);
  EXPECT_EQ(sim.utilization_of(ResourceId::processor(7)), 0.0);
}

TEST(EventSim, ImbalancedPipelineShowsIdleStage) {
  // Stage 1 carries 3/4 of the work: stage 2's GPU must idle ~2/3.
  std::vector<Layer> layers{
      {"heavy", ms(15), ms(30), MB, MB},
      {"light", ms(5), ms(10), MB, MB},
  };
  const Chain c("imbalanced", MB, std::move(layers));
  const Platform p{2, 100 * GB, 1e6 * GB};
  const Allocation a = make_contiguous_allocation(c, {{1, 1}, {2, 2}}, 2);
  const auto plan = plan_one_f_one_b(a, c, p);
  ASSERT_TRUE(plan.has_value());
  const auto sim = simulate_pattern(plan->pattern, a, c, p, {64});
  EXPECT_GT(sim.utilization_of(ResourceId::processor(0)), 0.9);
  EXPECT_LT(sim.utilization_of(ResourceId::processor(1)), 0.45);
}

}  // namespace
}  // namespace madpipe
