#include "util/flat_hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace madpipe::util {
namespace {

TEST(FlatHash, InsertFindRoundTrip) {
  FlatHash64<double> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(42), nullptr);

  const auto [slot, inserted] = table.emplace(42, 1.5);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 1.5);
  ASSERT_NE(table.find(42), nullptr);
  EXPECT_EQ(*table.find(42), 1.5);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatHash, EmplaceFindsExistingWithoutOverwrite) {
  FlatHash64<int> table;
  table.emplace(7, 100);
  const auto [slot, inserted] = table.emplace(7, 200);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*slot, 100);  // the existing value is left untouched
  *slot = 300;            // ...but the returned slot is writable
  EXPECT_EQ(*table.find(7), 300);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatHash, GrowsPastInitialCapacityAndKeepsEverything) {
  FlatHash64<std::uint64_t> table;
  constexpr std::uint64_t kCount = 10'000;
  for (std::uint64_t key = 0; key < kCount; ++key) {
    table.emplace(key, key * 3);
  }
  EXPECT_EQ(table.size(), kCount);
  EXPECT_LE(table.load_factor(), 7.0 / 8.0);
  for (std::uint64_t key = 0; key < kCount; ++key) {
    ASSERT_NE(table.find(key), nullptr) << key;
    EXPECT_EQ(*table.find(key), key * 3) << key;
  }
  EXPECT_EQ(table.find(kCount + 1), nullptr);
}

TEST(FlatHash, HandlesCollidingProbeChains) {
  // Keys a power-of-two stride apart collide heavily under any masked hash;
  // linear probing must still keep them all distinct.
  FlatHash64<int> table;
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(static_cast<std::uint64_t>(i) << 20);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    table.emplace(keys[i], static_cast<int>(i));
  }
  EXPECT_EQ(table.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(table.find(keys[i]), nullptr);
    EXPECT_EQ(*table.find(keys[i]), static_cast<int>(i));
  }
}

TEST(FlatHash, ReserveAvoidsRehashGrowth) {
  FlatHash64<int> table(4'000);
  const std::size_t capacity = table.capacity();
  EXPECT_GE(capacity * 7, 4'000u * 8);  // fits under the max load factor
  for (std::uint64_t key = 1; key <= 4'000; ++key) {
    table.emplace(key, 1);
  }
  EXPECT_EQ(table.capacity(), capacity);  // no growth happened

  table.reserve(100);  // never shrinks
  EXPECT_EQ(table.capacity(), capacity);
}

TEST(FlatHash, CountsRehashesAndAvoidedRehashes) {
  FlatHash64<int> grown;
  EXPECT_EQ(grown.rehashes(), 0u);
  for (std::uint64_t key = 1; key <= 4'000; ++key) grown.emplace(key, 1);
  // Lazy growth from the 16-slot default to 8192 moves entries 9 times.
  EXPECT_EQ(grown.rehashes(), 9u);
  EXPECT_EQ(grown.rehashes_avoided(), 0u);

  FlatHash64<int> reserved;
  reserved.reserve(4'000);
  // The same doublings, skipped while the table was empty.
  EXPECT_EQ(reserved.rehashes_avoided(), 9u);
  for (std::uint64_t key = 1; key <= 4'000; ++key) reserved.emplace(key, 1);
  EXPECT_EQ(reserved.rehashes(), 0u);

  // A late reserve with entries present pays one rehash for the rest.
  FlatHash64<int> late;
  for (std::uint64_t key = 1; key <= 100; ++key) late.emplace(key, 1);
  const std::size_t before = late.rehashes();
  late.reserve(4'000);
  EXPECT_EQ(late.rehashes(), before + 1);
  EXPECT_GT(late.rehashes_avoided(), 0u);
}

TEST(FlatHash, IndexedKeySetInsertionOrderAndLookup) {
  IndexedKeySet64 set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.find(5), -1);
  EXPECT_EQ(set.insert(5), (std::pair<std::int32_t, bool>{0, true}));
  EXPECT_EQ(set.insert(9), (std::pair<std::int32_t, bool>{1, true}));
  EXPECT_EQ(set.insert(5), (std::pair<std::int32_t, bool>{0, false}));
  EXPECT_EQ(set.insert(2), (std::pair<std::int32_t, bool>{2, true}));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.find(9), 1);
  EXPECT_EQ(set.key_at(2), 2u);
  const std::vector<std::uint64_t> expected{5, 9, 2};
  EXPECT_EQ(set.keys(), expected);
}

TEST(FlatHash, IndexedKeySetMergeShardDedupsInOrder) {
  IndexedKeySet64 set;
  set.insert(10);
  const std::vector<std::uint64_t> a{11, 10, 12, 11};
  const std::vector<std::uint64_t> b{12, 13, 10, 14};
  EXPECT_TRUE(set.merge_shard(a.data(), a.data() + a.size(), 100));
  EXPECT_TRUE(set.merge_shard(b.data(), b.data() + b.size(), 100));
  const std::vector<std::uint64_t> expected{10, 11, 12, 13, 14};
  EXPECT_EQ(set.keys(), expected);
}

TEST(FlatHash, IndexedKeySetMergeShardHonorsCap) {
  IndexedKeySet64 set;
  const std::vector<std::uint64_t> keys{1, 2, 3, 4, 5};
  EXPECT_FALSE(set.merge_shard(keys.data(), keys.data() + keys.size(), 3));
  EXPECT_EQ(set.size(), 3u);
  const std::vector<std::uint64_t> expected{1, 2, 3};
  EXPECT_EQ(set.keys(), expected);
  // Duplicates past the cap are not truncation.
  const std::vector<std::uint64_t> dups{3, 2, 1};
  EXPECT_TRUE(set.merge_shard(dups.data(), dups.data() + dups.size(), 3));
  EXPECT_EQ(set.size(), 3u);
}

TEST(FlatHash, ClearEmptiesButKeepsCapacity) {
  FlatHash64<int> table;
  for (std::uint64_t key = 1; key <= 100; ++key) table.emplace(key, 1);
  const std::size_t capacity = table.capacity();
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.capacity(), capacity);
  EXPECT_EQ(table.find(50), nullptr);
  table.emplace(50, 2);
  EXPECT_EQ(*table.find(50), 2);
}

TEST(FlatHash, AgreesWithUnorderedMapOnPseudoRandomWorkload) {
  FlatHash64<std::uint64_t> table;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  std::uint64_t state = 0x123456789ull;
  for (int i = 0; i < 20'000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t key = state >> 20;  // plenty of duplicates
    if (key == FlatHash64<std::uint64_t>::kEmptyKey) continue;
    const auto [slot, inserted] = table.emplace(key, state);
    const auto [it, oracle_inserted] = oracle.emplace(key, state);
    EXPECT_EQ(inserted, oracle_inserted);
    EXPECT_EQ(*slot, it->second);
  }
  EXPECT_EQ(table.size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    ASSERT_NE(table.find(key), nullptr);
    EXPECT_EQ(*table.find(key), value);
  }
}

TEST(FlatHash, EraseBasics) {
  FlatHash64<int> table;
  table.emplace(1, 10);
  table.emplace(2, 20);
  EXPECT_TRUE(table.erase(1));
  EXPECT_EQ(table.find(1), nullptr);
  EXPECT_FALSE(table.erase(1));  // already gone
  EXPECT_FALSE(table.erase(99));
  ASSERT_NE(table.find(2), nullptr);
  EXPECT_EQ(*table.find(2), 20);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatHash, EraseBackwardShiftPreservesProbeChains) {
  // Dense clusters stress the backward-shift deletion: after erasing any
  // element, every survivor must stay findable (no tombstones to hide it).
  FlatHash64<std::uint64_t> table;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; k <= 200; ++k) keys.push_back(k);
  for (const std::uint64_t key : keys) table.emplace(key, key * 3);
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(table.erase(keys[i]));
    // Every not-yet-erased key is still reachable through its probe chain.
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      ASSERT_NE(table.find(keys[j]), nullptr) << "lost key " << keys[j]
                                              << " after erasing " << keys[i];
    }
  }
}

TEST(FlatHash, EraseAgreesWithUnorderedMapOnMixedWorkload) {
  FlatHash64<std::uint64_t> table;
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  std::uint64_t state = 0xdeadbeefull;
  for (int i = 0; i < 30'000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t key = state >> 52;  // tiny key space: heavy churn
    if (key == FlatHash64<std::uint64_t>::kEmptyKey) continue;
    const std::uint64_t op = (state >> 8) % 3;
    if (op == 0) {
      EXPECT_EQ(table.erase(key), oracle.erase(key) > 0) << "op " << i;
    } else {
      const auto [slot, inserted] = table.emplace(key, state);
      const auto [it, oracle_inserted] = oracle.emplace(key, state);
      EXPECT_EQ(inserted, oracle_inserted);
      EXPECT_EQ(*slot, it->second);
    }
    if (i % 1000 == 0) {
      ASSERT_EQ(table.size(), oracle.size()) << "op " << i;
    }
  }
  EXPECT_EQ(table.size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    ASSERT_NE(table.find(key), nullptr);
    EXPECT_EQ(*table.find(key), value);
  }
}

}  // namespace
}  // namespace madpipe::util
