// Fleet simulator tests: trace parsing (strict, table-driven bad inputs),
// seeded synthesis, exact jobs-in == jobs-out accounting, the
// pool-resize -> preemption -> replanning-through-PlanService path (the
// ISSUE acceptance criterion), per-policy placement behavior, event-log
// bit-identity, and the wall-clock plan-deadline degradation valve.
#include "fleet/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fleet/trace.hpp"

namespace madpipe::fleet {
namespace {

/// A small hand-built trace: short chains keep planner runs cheap so the
/// whole file stays fast even though every placement is a real DP run.
FleetTrace tiny_trace() {
  FleetTrace trace;
  trace.pool_gpus = 8;
  trace.profile.chain_length = 4;
  return trace;
}

JobSpec job(const std::string& id, double arrival, int gpus, int min_gpus,
            long long batches) {
  JobSpec spec;
  spec.id = id;
  spec.arrival_s = arrival;
  spec.gpus = gpus;
  spec.min_gpus = min_gpus;
  spec.batches = batches;
  return spec;
}

const JobOutcome& outcome(const FleetResult& result, const std::string& id) {
  auto it = std::find_if(result.jobs.begin(), result.jobs.end(),
                         [&](const JobOutcome& o) { return o.id == id; });
  EXPECT_NE(it, result.jobs.end()) << "no outcome for job " << id;
  return *it;
}

bool log_contains(const FleetResult& result, const std::string& needle) {
  return std::any_of(result.event_log.begin(), result.event_log.end(),
                     [&](const std::string& line) {
                       return line.find(needle) != std::string::npos;
                     });
}

// ---------------------------------------------------------------- traces

TEST(FleetTrace, JsonRoundTripsThroughTheStrictParser) {
  FleetTrace trace = tiny_trace();
  trace.jobs.push_back(job("a", 0.0, 4, 2, 100));
  trace.jobs.push_back(job("b", 1.5, 8, 4, 200));
  trace.jobs[1].network = "resnet101";
  trace.jobs[1].deadline_s = 300.0;
  trace.pool_events.push_back({2.0, 4});
  trace.pool_events.push_back({5.0, 8});

  const std::string text = fleet_trace_to_json(trace);
  const FleetTraceParse parse = fleet_trace_from_json(text);
  ASSERT_TRUE(parse.ok()) << parse.error;
  EXPECT_EQ(parse.trace.pool_gpus, 8);
  EXPECT_EQ(parse.trace.profile.chain_length, 4);
  ASSERT_EQ(parse.trace.jobs.size(), 2u);
  EXPECT_EQ(parse.trace.jobs[1].id, "b");
  EXPECT_EQ(parse.trace.jobs[1].network, "resnet101");
  EXPECT_EQ(parse.trace.jobs[1].min_gpus, 4);
  EXPECT_EQ(parse.trace.jobs[1].deadline_s, 300.0);
  ASSERT_EQ(parse.trace.pool_events.size(), 2u);
  EXPECT_EQ(parse.trace.pool_events[0].gpus, 4);
  // Serializing the parsed trace again is a fixed point.
  EXPECT_EQ(fleet_trace_to_json(parse.trace), text);
}

TEST(FleetTrace, ParserRejectsBadDocuments) {
  FleetTrace trace = tiny_trace();
  trace.jobs.push_back(job("a", 0.0, 4, 2, 100));
  const std::string good = fleet_trace_to_json(trace);
  ASSERT_TRUE(fleet_trace_from_json(good).ok());

  struct Case {
    const char* label;
    std::string from, to;  // string surgery on the good document
    const char* expect;    // substring of the error
  };
  const std::vector<Case> cases = {
      {"unknown top-level key", "\"pool_gpus\"", "\"pool_gpuz\"", "pool_gpuz"},
      {"wrong schema", "fleet-trace-v1", "fleet-trace-v9", "schema"},
      {"unknown job key", "\"batches\"", "\"batchez\"", "batchez"},
      {"non-numeric gpus", "\"gpus\":4", "\"gpus\":\"four\"", "gpus"},
      {"not json at all", good, "{]", ""},
  };
  for (const Case& c : cases) {
    std::string text = good;
    const std::size_t pos = text.find(c.from);
    ASSERT_NE(pos, std::string::npos) << c.label;
    text.replace(pos, c.from.size(), c.to);
    const FleetTraceParse parse = fleet_trace_from_json(text);
    EXPECT_FALSE(parse.ok()) << c.label;
    EXPECT_NE(parse.error.find(c.expect), std::string::npos)
        << c.label << ": error was: " << parse.error;
  }
}

TEST(FleetTrace, ValidateCatchesSemanticProblems) {
  FleetTrace base = tiny_trace();
  base.jobs.push_back(job("a", 0.0, 4, 2, 100));
  ASSERT_EQ(fleet_trace_validate(base), "");

  FleetTrace dup = base;
  dup.jobs.push_back(job("a", 1.0, 2, 1, 10));
  EXPECT_NE(fleet_trace_validate(dup), "");

  FleetTrace unknown_net = base;
  unknown_net.jobs[0].network = "resnet5000";
  EXPECT_NE(fleet_trace_validate(unknown_net), "");

  FleetTrace inverted = base;
  inverted.jobs[0].min_gpus = 9;  // > gpus
  EXPECT_NE(fleet_trace_validate(inverted), "");

  // A job whose floor exceeds the FINAL pool capacity can never place:
  // the validator refuses rather than stranding it at runtime.
  FleetTrace stranded = base;
  stranded.pool_events.push_back({1.0, 1});  // below min_gpus=2, forever
  EXPECT_NE(fleet_trace_validate(stranded), "");
  stranded.pool_events.push_back({2.0, 8});  // restored -> fine again
  EXPECT_EQ(fleet_trace_validate(stranded), "");

  FleetTrace unsorted = base;
  unsorted.jobs.push_back(job("b", -1.0, 2, 1, 10));
  EXPECT_NE(fleet_trace_validate(unsorted), "");
}

TEST(FleetTrace, SynthesisIsSeedDeterministicAndValid) {
  SyntheticTraceConfig config;
  config.jobs = 12;
  const FleetTrace a = synthesize_fleet_trace(config);
  const FleetTrace b = synthesize_fleet_trace(config);
  EXPECT_EQ(fleet_trace_to_json(a), fleet_trace_to_json(b));
  EXPECT_EQ(fleet_trace_validate(a), "");
  EXPECT_FALSE(fleet_trace_has_plan_deadlines(a));
  EXPECT_EQ(a.jobs.size(), 12u);
  EXPECT_FALSE(a.pool_events.empty());  // the shrink/restore cycle

  config.seed = 43;
  const FleetTrace c = synthesize_fleet_trace(config);
  EXPECT_NE(fleet_trace_to_json(a), fleet_trace_to_json(c));
}

// ------------------------------------------------------------- simulator

TEST(FleetSimulator, AccountsForEveryJobExactly) {
  SyntheticTraceConfig config;
  config.jobs = 12;
  const FleetTrace trace = synthesize_fleet_trace(config);
  for (const std::string& policy : list_policies()) {
    FleetOptions options;
    options.policy = policy;
    const FleetResult result = run_fleet(trace, options);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.jobs_in, 12);
    EXPECT_TRUE(result.accounting_exact()) << policy;
    EXPECT_EQ(result.stranded, 0) << policy;
    EXPECT_EQ(result.jobs.size(), 12u);
    EXPECT_GT(result.utilization, 0.0);
    EXPECT_LE(result.utilization, 1.0);
    EXPECT_EQ(result.cache_hits + result.cache_misses,
              result.plans_requested);
  }
}

TEST(FleetSimulator, PoolShrinkPreemptsAndReplansThroughPlanService) {
  // One job wide enough to feel the shrink: placed at 8 GPUs, preempted
  // when the pool halves, re-placed at 4 — a different width, hence a
  // different canonical cache key, hence a second real PlanService plan.
  FleetTrace trace = tiny_trace();
  trace.jobs.push_back(job("wide", 0.0, 8, 4, 1'000'000));
  trace.pool_events.push_back({1.0, 4});

  FleetOptions options;
  const FleetResult result = run_fleet(trace, options);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.accounting_exact());
  EXPECT_EQ(result.completed, 1);
  EXPECT_EQ(result.preemptions, 1);
  EXPECT_GE(result.replans, 1);  // the re-placement after preemption

  const JobOutcome& wide = outcome(result, "wide");
  EXPECT_TRUE(wide.completed);
  EXPECT_EQ(wide.preemptions, 1);
  EXPECT_GE(wide.plans, 2);          // initial plan + forced replan
  EXPECT_EQ(wide.placed_gpus, 4);    // final width is the shrunken pool
  // Two distinct widths means two distinct canonical requests: the
  // service must have planned (not cache-hit) both.
  EXPECT_EQ(result.cache_misses, 2);
  EXPECT_TRUE(log_contains(result, "resize gpus=4"));
  EXPECT_TRUE(log_contains(result, "preempt job=wide"));
  EXPECT_TRUE(log_contains(result, "place job=wide gpus=4"));
}

TEST(FleetSimulator, PreemptedJobKeepsItsProgress) {
  // Measure the per-width periods with two unperturbed runs, then check
  // that the shrink run finishes at "60 s of width-8 progress plus the
  // remainder at width 4": preemption must conserve completed batches,
  // neither resurrecting finished work nor dropping it.
  const long long kBatches = 50'000;
  FleetTrace wide8 = tiny_trace();
  wide8.jobs.push_back(job("wide", 0.0, 8, 4, kBatches));
  const FleetResult at8 = run_fleet(wide8, FleetOptions{});
  ASSERT_TRUE(at8.ok()) << at8.error;
  ASSERT_EQ(at8.completed, 1);
  const double p8 = outcome(at8, "wide").finish_s / kBatches;

  FleetTrace narrow = tiny_trace();
  narrow.pool_gpus = 4;
  narrow.jobs.push_back(job("wide", 0.0, 8, 4, kBatches));
  const FleetResult at4 = run_fleet(narrow, FleetOptions{});
  ASSERT_TRUE(at4.ok()) << at4.error;
  ASSERT_EQ(at4.completed, 1);
  const double p4 = outcome(at4, "wide").finish_s / kBatches;
  ASSERT_GT(p8, 0.0);
  ASSERT_GT(p4, 0.0);

  FleetTrace shrink = tiny_trace();
  shrink.jobs.push_back(job("wide", 0.0, 8, 4, kBatches));
  shrink.pool_events.push_back({60.0, 4});
  const FleetResult preempted = run_fleet(shrink, FleetOptions{});
  ASSERT_TRUE(preempted.ok()) << preempted.error;
  ASSERT_EQ(preempted.preemptions, 1);
  ASSERT_EQ(preempted.completed, 1);
  const long long done = static_cast<long long>(60.0 / p8);
  ASSERT_GT(done, 0);
  // +/- one batch of tolerance absorbs the floor-at-epsilon boundary.
  EXPECT_NEAR(outcome(preempted, "wide").finish_s,
              60.0 + static_cast<double>(kBatches - done) * p4, 2.0 * p4);
}

TEST(FleetSimulator, FifoBlocksBehindTheHeadOfLine) {
  // head wants the whole pool while busy holds 6 of 8 GPUs; small fits in
  // the 2 free GPUs but FIFO must not let it jump the queue.
  FleetTrace trace = tiny_trace();
  trace.jobs.push_back(job("busy", 0.0, 6, 6, 30'000));
  trace.jobs.push_back(job("head", 0.1, 8, 8, 100));
  trace.jobs.push_back(job("small", 0.2, 2, 2, 100));

  FleetOptions fifo;
  fifo.policy = "fifo";
  const FleetResult strict = run_fleet(trace, fifo);
  ASSERT_TRUE(strict.ok()) << strict.error;
  EXPECT_EQ(strict.completed, 3);
  EXPECT_GE(outcome(strict, "small").first_start_s,
            outcome(strict, "head").first_start_s);

  // The deadline policy backfills: small starts immediately in the gap.
  FleetOptions edf;
  edf.policy = "deadline";
  const FleetResult backfilled = run_fleet(trace, edf);
  ASSERT_TRUE(backfilled.ok()) << backfilled.error;
  EXPECT_EQ(backfilled.completed, 3);
  EXPECT_LT(outcome(backfilled, "small").first_start_s,
            outcome(backfilled, "head").first_start_s);
  EXPECT_EQ(outcome(backfilled, "small").first_start_s, 0.2);
}

TEST(FleetSimulator, DeadlinePolicyOrdersByUrgency) {
  // Both waiters fit once the opener finishes; EDF must start the later
  // arrival first because its deadline is tighter.
  FleetTrace trace = tiny_trace();
  trace.jobs.push_back(job("opener", 0.0, 8, 8, 5'000));
  JobSpec relaxed = job("relaxed", 0.1, 8, 8, 100);
  relaxed.deadline_s = 100'000.0;
  JobSpec urgent = job("urgent", 0.2, 8, 8, 100);
  urgent.deadline_s = 5'000.0;
  trace.jobs.push_back(relaxed);
  trace.jobs.push_back(urgent);

  FleetOptions edf;
  edf.policy = "deadline";
  const FleetResult result = run_fleet(trace, edf);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.completed, 3);
  EXPECT_LT(outcome(result, "urgent").first_start_s,
            outcome(result, "relaxed").first_start_s);

  FleetOptions fifo;
  fifo.policy = "fifo";
  const FleetResult in_order = run_fleet(trace, fifo);
  ASSERT_TRUE(in_order.ok()) << in_order.error;
  EXPECT_LT(outcome(in_order, "relaxed").first_start_s,
            outcome(in_order, "urgent").first_start_s);
}

TEST(FleetSimulator, AffinityReusesWarmPlansAtLeastAsWellAsFifo) {
  SyntheticTraceConfig config;
  config.jobs = 16;
  const FleetTrace trace = synthesize_fleet_trace(config);
  FleetOptions fifo;
  fifo.policy = "fifo";
  FleetOptions affinity;
  affinity.policy = "affinity";
  const FleetResult cold = run_fleet(trace, fifo);
  const FleetResult warm = run_fleet(trace, affinity);
  ASSERT_TRUE(cold.ok()) << cold.error;
  ASSERT_TRUE(warm.ok()) << warm.error;
  // Structural: steering onto warm (network, width) pairs can only help.
  // The strict ">" headline lives in bench_fleet on the bigger trace.
  EXPECT_GE(warm.cache_hit_rate, cold.cache_hit_rate);
  EXPECT_GT(warm.cache_hit_rate, 0.0);
}

TEST(FleetSimulator, EventLogIsBitIdenticalAcrossRuns) {
  SyntheticTraceConfig config;
  config.jobs = 10;
  const FleetTrace trace = synthesize_fleet_trace(config);
  for (const std::string& policy : list_policies()) {
    FleetOptions options;
    options.policy = policy;
    const FleetResult a = run_fleet(trace, options);
    const FleetResult b = run_fleet(trace, options);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_FALSE(a.event_log.empty());
    EXPECT_EQ(a.event_log, b.event_log) << policy;
    EXPECT_EQ(a.event_log_hash, b.event_log_hash) << policy;
    EXPECT_EQ(a.event_log_hash, hash_event_log(a.event_log));
  }
}

TEST(FleetSimulator, PoliciesProduceDistinctLogsOnContendedTraces) {
  SyntheticTraceConfig config;
  config.jobs = 16;
  const FleetTrace trace = synthesize_fleet_trace(config);
  FleetOptions fifo;
  fifo.policy = "fifo";
  FleetOptions edf;
  edf.policy = "deadline";
  const FleetResult a = run_fleet(trace, fifo);
  const FleetResult b = run_fleet(trace, edf);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.event_log_hash, b.event_log_hash);
}

TEST(FleetSimulator, PlanDeadlineValveDegradesWithoutChangingAccounting) {
  // A wall-clock planning budget that is already over forces the
  // deadline->DP-budget valve on a cold plan. Degradation is a wall-clock
  // fact: reported in counters, never in the (sim-time) event log.
  FleetTrace trace = tiny_trace();
  trace.profile.chain_length = 8;  // enough DP states for the valve to bind
  trace.jobs.push_back(job("rushed", 0.0, 4, 4, 100));
  trace.jobs[0].plan_deadline_ms = 1e-6;
  EXPECT_TRUE(fleet_trace_has_plan_deadlines(trace));

  // Zoo chains at this scale fit under the default 20k-state floor, so
  // the floor itself must be lowered for the valve to observably bind.
  serve::ServiceOptions service_options;
  service_options.min_state_budget = 1;
  const FleetResult result = run_fleet(trace, FleetOptions{}, service_options);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.completed, 1);
  EXPECT_TRUE(result.accounting_exact());
  EXPECT_GE(result.degraded_plans, 1);
  EXPECT_FALSE(log_contains(result, "degraded"));
}

TEST(FleetSimulator, RejectsUnknownPolicyAndBadTraceGracefully) {
  const FleetTrace trace = synthesize_fleet_trace({});
  FleetOptions options;
  options.policy = "round-robin";
  const FleetResult bad_policy = run_fleet(trace, options);
  EXPECT_FALSE(bad_policy.ok());
  EXPECT_NE(bad_policy.error.find("round-robin"), std::string::npos);

  FleetTrace broken = tiny_trace();
  broken.jobs.push_back(job("", 0.0, 4, 2, 100));  // empty id
  const FleetResult bad_trace = run_fleet(broken, FleetOptions{});
  EXPECT_FALSE(bad_trace.ok());
}

TEST(FleetSimulator, ReportAndJsonCarryTheHeadlineNumbers) {
  SyntheticTraceConfig config;
  config.jobs = 8;
  const FleetTrace trace = synthesize_fleet_trace(config);
  const FleetResult result = run_fleet(trace, FleetOptions{});
  ASSERT_TRUE(result.ok()) << result.error;

  const std::string report = fleet_result_report(result);
  EXPECT_NE(report.find("fifo"), std::string::npos);
  EXPECT_NE(report.find("utilization"), std::string::npos);

  const std::string json = fleet_result_to_json(result, true);
  EXPECT_NE(json.find(kFleetReportSchema), std::string::npos);
  EXPECT_NE(json.find("\"event_log\":"), std::string::npos);
  const std::string lean = fleet_result_to_json(result, false);
  // The hash key ("event_log_hash") stays; the log array itself goes.
  EXPECT_EQ(lean.find("\"event_log\":"), std::string::npos);
  EXPECT_NE(lean.find("\"event_log_hash\":"), std::string::npos);
  EXPECT_LT(lean.size(), json.size());
}

}  // namespace
}  // namespace madpipe::fleet
