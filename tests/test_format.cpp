#include "util/format.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace madpipe::fmt {
namespace {

TEST(Format, BytesScales) {
  EXPECT_EQ(bytes(12.0), "12 B");
  EXPECT_EQ(bytes(1.5e3), "1.5 kB");
  EXPECT_EQ(bytes(512e6), "512.0 MB");
  EXPECT_EQ(bytes(3e9), "3.00 GB");
}

TEST(Format, BytesNegative) { EXPECT_EQ(bytes(-2e9), "-2.00 GB"); }

TEST(Format, SecondsScales) {
  EXPECT_EQ(seconds(1.204), "1.204 s");
  EXPECT_EQ(seconds(12.5e-3), "12.50 ms");
  EXPECT_EQ(seconds(850e-6), "850.0 us");
  EXPECT_EQ(seconds(3e-9), "3.0 ns");
}

TEST(Format, FixedPrecision) {
  EXPECT_EQ(fixed(1.23456, 3), "1.235");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Format, FixedRejectsSillyPrecision) {
  EXPECT_THROW(fixed(1.0, -1), ContractViolation);
  EXPECT_THROW(fixed(1.0, 30), ContractViolation);
}

TEST(Format, TableAlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Format, TableRejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
}

TEST(Format, TableRejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ContractViolation);
}

}  // namespace
}  // namespace madpipe::fmt
