// Randomized cross-checks against brute force: on small random instances,
// the dynamic programs must match exhaustive enumeration and the schedulers
// must agree with each other. Seeds are fixed — failures are reproducible.
#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "core/memory_model.hpp"
#include "cyclic/bb_scheduler.hpp"
#include "cyclic/ilp_scheduler.hpp"
#include "cyclic/period_search.hpp"
#include "pipedream/pipedream.hpp"
#include "schedule/gpipe.hpp"
#include "schedule/one_f_one_b.hpp"
#include "sim/event_sim.hpp"

namespace madpipe {
namespace {

Chain random_chain(unsigned seed, int length) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dur(1.0, 12.0);
  std::uniform_real_distribution<double> size(5.0, 120.0);
  std::vector<Layer> layers;
  for (int i = 0; i < length; ++i) {
    layers.push_back(Layer{"f" + std::to_string(i), ms(dur(rng)),
                           ms(dur(rng)), size(rng) * MB, size(rng) * MB});
  }
  return Chain("fuzz" + std::to_string(seed), size(rng) * MB,
               std::move(layers));
}

/// All contiguous partitionings of `chain` into at most `max_stages` stages.
std::vector<std::vector<Stage>> all_partitionings(const Chain& chain,
                                                  int max_stages) {
  const int L = chain.length();
  std::vector<std::vector<Stage>> result;
  for (int mask = 0; mask < (1 << (L - 1)); ++mask) {
    std::vector<Stage> stages;
    int first = 1;
    for (int l = 1; l <= L; ++l) {
      if (l == L || (mask & (1 << (l - 1)))) {
        stages.push_back({first, l});
        first = l + 1;
      }
    }
    if (static_cast<int>(stages.size()) <= max_stages) {
      result.push_back(std::move(stages));
    }
  }
  return result;
}

class PipeDreamFuzz : public ::testing::TestWithParam<unsigned> {};

// The PipeDream DP must equal brute force over every contiguous
// partitioning under the same load and memory rules.
TEST_P(PipeDreamFuzz, MatchesBruteForce) {
  const unsigned seed = GetParam();
  const Chain c = random_chain(seed, 6 + seed % 3);
  const Platform p{3, (0.8 + (seed % 5) * 0.4) * GB, 12 * GB};

  double best = std::numeric_limits<double>::infinity();
  for (const auto& stages : all_partitionings(c, p.processors)) {
    const int n = static_cast<int>(stages.size());
    bool feasible = true;
    double value = 0.0;
    for (int s = 0; s < n && feasible; ++s) {
      if (stage_memory(c, stages[s].first, stages[s].last, n - s) >
          p.memory_per_processor) {
        feasible = false;
        break;
      }
      value = std::max(value, c.compute_load(stages[s].first, stages[s].last));
      if (s + 1 < n) {
        value = std::max(value, p.boundary_comm_time(c, stages[s].last));
      }
    }
    if (feasible) best = std::min(best, value);
  }

  const auto result = pipedream_partition(c, p);
  if (!std::isfinite(best)) {
    EXPECT_FALSE(result.has_value());
  } else {
    ASSERT_TRUE(result.has_value());
    EXPECT_NEAR(result->dp_period, best, best * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipeDreamFuzz, ::testing::Range(100u, 130u));

class SchedulerAgreementFuzz : public ::testing::TestWithParam<unsigned> {};

// On random non-contiguous allocations: whenever the (conservative) ILP
// schedules at some period, the exact B&B must too; both patterns must pass
// the exact verifier; and the ASAP simulation of either can only be faster.
TEST_P(SchedulerAgreementFuzz, IlpImpliesBBAndBothValidate) {
  const unsigned seed = GetParam();
  const Chain c = random_chain(seed, 6);
  const Platform p{2, (1.0 + (seed % 4) * 0.8) * GB, 12 * GB};
  // Allocation shape: [1,a] on 0, [a+1,b] on 1, [b+1,6] on 0.
  const int a = 1 + static_cast<int>(seed % 3);
  const int b = a + 1 + static_cast<int>((seed / 3) % (5 - a));
  Allocation allocation(Partitioning(c, {{1, a}, {a + 1, b}, {b + 1, 6}}),
                        {0, 1, 0}, 2);
  const CyclicProblem problem = build_cyclic_problem(allocation, c, p);

  for (const double factor : {1.05, 1.3, 1.8}) {
    const Seconds period = problem.min_period * factor;
    const ILPScheduleResult ilp =
        ilp_schedule(problem, allocation, c, p, period);
    const BBResult bb = bb_schedule(problem, allocation, c, p, period);
    if (ilp.feasible) {
      EXPECT_TRUE(bb.feasible) << "seed " << seed << " factor " << factor;
    }
    for (const PeriodicPattern* pattern :
         {ilp.feasible ? &ilp.pattern : nullptr,
          bb.feasible ? &bb.pattern : nullptr}) {
      if (pattern == nullptr) continue;
      const auto check = validate_pattern(*pattern, allocation, c, p);
      EXPECT_TRUE(check.valid);
      const auto sim = simulate_pattern(*pattern, allocation, c, p, {24});
      EXPECT_LE(sim.steady_period, period * (1.0 + 1e-6));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerAgreementFuzz,
                         ::testing::Range(200u, 220u));

class GPipeFuzz : public ::testing::TestWithParam<unsigned> {};

// plan_gpipe balances under its memory model; brute force over contiguous
// partitionings with the same period formula must not beat it.
TEST_P(GPipeFuzz, NearBruteForce) {
  const unsigned seed = GetParam();
  const Chain c = random_chain(seed, 6 + seed % 3);
  const Platform p{3, (0.8 + (seed % 4) * 0.5) * GB, 12 * GB};
  const int m = 4;

  double best = std::numeric_limits<double>::infinity();
  for (const auto& stages : all_partitionings(c, p.processors)) {
    bool feasible = true;
    for (const Stage& st : stages) {
      if (gpipe_stage_memory(c, st.first, st.last, m) >
          p.memory_per_processor) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    const Allocation allocation =
        make_contiguous_allocation(c, stages, p.processors);
    best = std::min(best, gpipe_period(allocation, c, p, m));
  }

  const auto plan = plan_gpipe(c, p, {m});
  if (!std::isfinite(best)) {
    EXPECT_FALSE(plan.has_value());
    return;
  }
  ASSERT_TRUE(plan.has_value());
  // The planner balances the bottleneck rather than the exact makespan, so
  // allow a modest optimality gap — but never infeasibility or nonsense.
  EXPECT_LE(plan->period, best * 1.25) << "seed " << seed;
  EXPECT_GE(plan->period, best * (1.0 - 1e-9)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GPipeFuzz, ::testing::Range(300u, 320u));

class OneFOneBFuzzMin : public ::testing::TestWithParam<unsigned> {};

// plan_one_f_one_b claims minimality via breakpoint enumeration; verify by
// dense scanning: no period strictly below the returned one may be
// memory-feasible.
TEST_P(OneFOneBFuzzMin, BreakpointScanIsMinimal) {
  const unsigned seed = GetParam();
  const Chain c = random_chain(seed, 8);
  const Platform p{4, (1.0 + (seed % 4) * 0.6) * GB, 12 * GB};
  std::vector<Stage> stages{{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  const Allocation allocation = make_contiguous_allocation(c, stages, 4);
  const auto plan = plan_one_f_one_b(allocation, c, p);
  if (!plan) GTEST_SKIP();
  const Seconds optimum = plan->period();
  // Below the max pseudo-stage load no pattern exists regardless of memory,
  // so only probe the range where memory is the binding constraint.
  Seconds max_load = 0.0;
  for (const PseudoStage& ps : comm_transform(allocation, c, p)) {
    max_load = std::max(max_load, ps.total());
  }
  if (optimum <= max_load * 1.001) GTEST_SKIP() << "load-bound instance";
  for (double f = 0.90; f < 0.999; f += 0.01) {
    if (optimum * f <= max_load) continue;
    EXPECT_FALSE(memory_feasible(allocation, c, p, optimum * f))
        << "seed " << seed << " factor " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneFOneBFuzzMin, ::testing::Range(400u, 425u));

}  // namespace
}  // namespace madpipe
