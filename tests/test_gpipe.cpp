#include "schedule/gpipe.hpp"

#include <gtest/gtest.h>

#include "pipedream/pipedream.hpp"
#include "util/expect.hpp"

namespace madpipe {
namespace {

Chain chain8() {
  return make_uniform_chain(8, ms(5), ms(10), 4 * MB, 30 * MB, 20 * MB);
}

TEST(GPipe, PeriodFormulaOnUniformPipeline) {
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e9 * GB};  // free comm
  const Allocation a = make_contiguous_allocation(
      c, {{1, 2}, {3, 4}, {5, 6}, {7, 8}}, 4);
  // 4 slots of 10 ms fwd / 20 ms bwd each, m=4 micro-batches:
  // fwd: 4·2.5 + 3·2.5 = 17.5 ms; bwd: 4·5 + 3·5 = 35 ms; total 52.5 ms.
  EXPECT_NEAR(gpipe_period(a, c, p, 4), ms(52.5), ms(0.01));
}

TEST(GPipe, MoreMicroBatchesShrinkTheBubble) {
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e9 * GB};
  const Allocation a = make_contiguous_allocation(
      c, {{1, 2}, {3, 4}, {5, 6}, {7, 8}}, 4);
  Seconds previous = gpipe_period(a, c, p, 1);
  for (const int m : {2, 4, 8, 16}) {
    const Seconds period = gpipe_period(a, c, p, m);
    EXPECT_LT(period, previous);
    previous = period;
  }
  // The limit is the bottleneck-bound 30 ms per batch.
  EXPECT_GT(previous, ms(30));
}

TEST(GPipe, SingleMicroBatchIsSequentialPlusComm) {
  const Chain c = chain8();
  const Platform p{2, 100 * GB, 1e9 * GB};
  const Allocation a = make_contiguous_allocation(c, {{1, 4}, {5, 8}}, 2);
  EXPECT_NEAR(gpipe_period(a, c, p, 1), c.total_compute(), ms(0.01));
}

TEST(GPipe, MemoryModelStoresOneWeightVersion) {
  const Chain c = chain8();
  // 2W (not 3W like the 1F1B schemes) + full batch of activations.
  const Bytes expected = 2.0 * c.weight_sum(3, 4) +
                         c.stored_activation_sum(3, 4) +
                         2.0 * (c.activation(2) + c.activation(4)) / 4;
  EXPECT_DOUBLE_EQ(gpipe_stage_memory(c, 3, 4, 4), expected);
}

TEST(GPipe, PlanBalancesAndValidatesMemory) {
  const Chain c = chain8();
  const Platform p{4, GB, 12 * GB};
  const auto plan = plan_gpipe(c, p, {4});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->micro_batches, 4);
  const Partitioning& parts = plan->allocation.partitioning();
  for (int s = 0; s < parts.num_stages(); ++s) {
    EXPECT_LE(gpipe_stage_memory(c, parts.stage(s).first,
                                 parts.stage(s).last, 4),
              p.memory_per_processor * (1.0 + 1e-9));
  }
  EXPECT_GT(plan->speedup(c), 1.0);
}

TEST(GPipe, InfeasibleWhenNothingFits) {
  const Chain c = make_uniform_chain(4, ms(1), ms(1), GB, MB, MB);
  const Platform p{2, GB, 12 * GB};
  EXPECT_FALSE(plan_gpipe(c, p).has_value());
}

TEST(GPipe, BubbleMakesItSlowerThanOneFOneBStarAtEqualMemory) {
  // With ample memory both planners can balance perfectly, but GPipe pays
  // the fill/drain bubble: 1F1B*-scheduled PipeDream must win.
  const Chain c = chain8();
  const Platform p{4, 100 * GB, 1e6 * GB};
  const auto gpipe = plan_gpipe(c, p, {8});
  const auto pipedream = plan_pipedream(c, p);
  ASSERT_TRUE(gpipe.has_value());
  ASSERT_TRUE(pipedream.has_value());
  EXPECT_GT(gpipe->period, pipedream->period());
}

TEST(GPipe, SurvivesTighterMemoryThanPipeDream) {
  // GPipe stores 2W + one batch of activations regardless of depth; the
  // 1F1B schemes store 3W + up to P batches. Construct a weight-light,
  // activation-balanced case where PipeDream's estimate fails first.
  const Chain c = make_uniform_chain(8, ms(5), ms(10), 1 * MB, 120 * MB,
                                     120 * MB);
  for (double mem = 0.4; mem <= 2.0; mem += 0.1) {
    const Platform p{4, mem * GB, 12 * GB};
    const bool gpipe_ok = plan_gpipe(c, p, {8}).has_value();
    const bool pd_ok = pipedream_partition(c, p).has_value();
    if (gpipe_ok && !pd_ok) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "expected a memory window where only GPipe fits";
}

TEST(GPipe, RejectsBadMicroBatchCount) {
  const Chain c = chain8();
  const Platform p{2, GB, 12 * GB};
  EXPECT_THROW(plan_gpipe(c, p, {0}), ContractViolation);
}

}  // namespace
}  // namespace madpipe
