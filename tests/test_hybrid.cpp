#include "hybrid/hybrid.hpp"

#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "util/expect.hpp"

namespace madpipe::hybrid {
namespace {

Chain chain8() {
  return make_uniform_chain(8, ms(5), ms(10), 10 * MB, 40 * MB, 30 * MB);
}

TEST(Hybrid, AllReduceFormula) {
  // 2·(r−1)/r · bytes/β.
  EXPECT_DOUBLE_EQ(allreduce_time(12 * GB, 2, 12 * GB), 1.0);
  EXPECT_DOUBLE_EQ(allreduce_time(12 * GB, 4, 12 * GB), 1.5);
  EXPECT_DOUBLE_EQ(allreduce_time(12 * GB, 1, 12 * GB), 0.0);
}

TEST(Hybrid, AllReduceApproachesTwiceTheVolume) {
  const Seconds big = allreduce_time(GB, 1024, GB);
  EXPECT_NEAR(big, 2.0, 0.01);
}

TEST(Hybrid, ShardedTransferScalesWithNarrowEnd) {
  EXPECT_DOUBLE_EQ(sharded_transfer_time(12 * GB, 4, 2, 12 * GB), 0.5);
  EXPECT_DOUBLE_EQ(sharded_transfer_time(12 * GB, 1, 8, 12 * GB), 1.0);
}

TEST(Hybrid, ContractChecks) {
  EXPECT_THROW(allreduce_time(GB, 0, GB), ContractViolation);
  EXPECT_THROW(sharded_transfer_time(GB, 0, 1, GB), ContractViolation);
}

TEST(Hybrid, PlanCoversChainAndRespectsGpuBudget) {
  const Chain c = chain8();
  const Platform p{8, 2 * GB, 12 * GB};
  const auto plan = plan_hybrid(c, p);
  ASSERT_TRUE(plan.has_value());
  EXPECT_LE(plan->gpus_used, 8);
  int layer = 1;
  for (const HybridStage& stage : plan->stages) {
    EXPECT_EQ(stage.layers.first, layer);
    layer = stage.layers.last + 1;
    EXPECT_GE(stage.replication, 1);
    EXPECT_LE(stage.replica_memory, p.memory_per_processor * (1.0 + 1e-9));
  }
  EXPECT_EQ(layer, c.length() + 1);
}

TEST(Hybrid, PeriodIsTheBottleneckStage) {
  const Chain c = chain8();
  const Platform p{8, 2 * GB, 12 * GB};
  const auto plan = plan_hybrid(c, p);
  ASSERT_TRUE(plan.has_value());
  Seconds max_load = 0.0;
  for (const HybridStage& stage : plan->stages) {
    max_load = std::max(max_load, stage.effective_load);
  }
  EXPECT_GE(plan->period, max_load - 1e-12);
}

TEST(Hybrid, DegeneratesToModelParallelOnOneGpuPerStage) {
  // With memory forcing many stages and P small, replication stays 1 and
  // the plan reduces to plain pipelined model parallelism.
  const Chain c = chain8();
  const Platform p{2, 800 * MB, 12 * GB};
  const auto plan = plan_hybrid(c, p);
  if (!plan) GTEST_SKIP();
  for (const HybridStage& stage : plan->stages) {
    EXPECT_EQ(stage.replication, 1);
  }
}

TEST(Hybrid, BeatsPureDataParallelWhenWeightsAreHeavy) {
  // Heavy weights make the P-way AllReduce expensive: hybrid grouping must
  // match or beat pure data parallelism.
  const Chain c = make_uniform_chain(8, ms(5), ms(10), 200 * MB, 10 * MB,
                                     10 * MB);
  const Platform p{16, 8 * GB, 12 * GB};
  const auto hybrid_plan = plan_hybrid(c, p);
  const auto dp_plan = plan_data_parallel(c, p);
  ASSERT_TRUE(hybrid_plan.has_value());
  ASSERT_TRUE(dp_plan.has_value());
  EXPECT_LE(hybrid_plan->period, dp_plan->period * (1.0 + 1e-9));
}

TEST(Hybrid, ScalesBeyondPureModelParallelism) {
  // Pure model parallelism is capped by the chain length / bottleneck
  // stage; with 32 GPUs the hybrid must exploit replication.
  const Chain c = chain8();
  const Platform p{32, 4 * GB, 12 * GB};
  const auto plan = plan_hybrid(c, p);
  ASSERT_TRUE(plan.has_value());
  int total_replicas = 0;
  for (const HybridStage& stage : plan->stages) {
    total_replicas += stage.replication;
  }
  EXPECT_GT(total_replicas, static_cast<int>(plan->stages.size()))
      << "expected some stage to replicate";
  // Better than the best pure-model bound (bottleneck = one 15 ms layer).
  EXPECT_LT(plan->period, ms(15));
}

TEST(Hybrid, MoreGpusNeverHurt) {
  const Chain c = chain8();
  Seconds previous = std::numeric_limits<double>::infinity();
  for (const int gpus : {2, 4, 8, 16, 32}) {
    const Platform p{gpus, 2 * GB, 12 * GB};
    const auto plan = plan_hybrid(c, p);
    if (!plan) continue;
    EXPECT_LE(plan->period, previous * (1.0 + 1e-9)) << gpus;
    previous = plan->period;
  }
}

TEST(Hybrid, PowerOfTwoRestrictionIsNeverBetter) {
  const Chain c = chain8();
  const Platform p{12, 2 * GB, 12 * GB};
  HybridOptions pow2;
  HybridOptions any;
  any.power_of_two_replication = false;
  const auto restricted = plan_hybrid(c, p, pow2);
  const auto general = plan_hybrid(c, p, any);
  ASSERT_TRUE(restricted.has_value());
  ASSERT_TRUE(general.has_value());
  EXPECT_LE(general->period, restricted->period * (1.0 + 1e-9));
}

TEST(Hybrid, DataParallelMatchesHandFormula) {
  const Chain c = chain8();
  const Platform p{8, 8 * GB, 12 * GB};
  const auto plan = plan_data_parallel(c, p);
  ASSERT_TRUE(plan.has_value());
  const Seconds expected =
      c.total_compute() / 8 +
      allreduce_time(c.weight_sum(1, 8), 8, p.bandwidth);
  EXPECT_NEAR(plan->period, expected, 1e-12);
}

TEST(Hybrid, DataParallelInfeasibleWhenReplicaTooBig) {
  const Chain c = make_uniform_chain(4, ms(1), ms(1), GB, MB, MB);
  const Platform p{4, 2 * GB, 12 * GB};  // 3·4GB of weights per replica
  EXPECT_FALSE(plan_data_parallel(c, p).has_value());
}

TEST(Hybrid, PaperNetworkScalability) {
  // The paper's conclusion scenario: hybrid keeps scaling where pure model
  // parallelism saturates.
  const Chain c = models::paper_network("resnet50");
  const Platform p16{16, 8 * GB, 12 * GB};
  const Platform p32{32, 8 * GB, 12 * GB};
  const auto plan16 = plan_hybrid(c, p16);
  const auto plan32 = plan_hybrid(c, p32);
  ASSERT_TRUE(plan16.has_value());
  ASSERT_TRUE(plan32.has_value());
  EXPECT_GT(plan32->speedup(c), plan16->speedup(c) * 1.2);
}

TEST(Hybrid, PlanToStringMentionsReplication) {
  const Chain c = chain8();
  const Platform p{8, 2 * GB, 12 * GB};
  const auto plan = plan_hybrid(c, p);
  ASSERT_TRUE(plan.has_value());
  const std::string text = hybrid_plan_to_string(*plan, c);
  EXPECT_NE(text.find("replicas"), std::string::npos);
  EXPECT_NE(text.find("stage 0"), std::string::npos);
}

}  // namespace
}  // namespace madpipe::hybrid
