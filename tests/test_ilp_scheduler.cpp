#include "cyclic/ilp_scheduler.hpp"

#include <gtest/gtest.h>

#include "cyclic/bb_scheduler.hpp"
#include "schedule/one_f_one_b.hpp"

namespace madpipe {
namespace {

Chain small_chain() {
  std::vector<Layer> layers{
      {"l1", ms(4), ms(8), 2 * MB, 30 * MB},
      {"l2", ms(6), ms(12), 4 * MB, 20 * MB},
      {"l3", ms(5), ms(10), 2 * MB, 25 * MB},
      {"l4", ms(3), ms(6), 1 * MB, 10 * MB},
  };
  return Chain("small", 40 * MB, std::move(layers));
}

TEST(ILPScheduler, SchedulesTwoStagePipeline) {
  const Chain c = small_chain();
  const Platform p{2, 10 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, {{1, 2}, {3, 4}}, 2);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  const ILPScheduleResult result =
      ilp_schedule(problem, a, c, p, problem.serial_period);
  ASSERT_TRUE(result.feasible);
  const auto check = validate_pattern(result.pattern, a, c, p);
  EXPECT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST(ILPScheduler, InfeasibleWhenOpExceedsPeriod) {
  const Chain c = small_chain();
  const Platform p{2, 10 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, {{1, 2}, {3, 4}}, 2);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  EXPECT_FALSE(ilp_schedule(problem, a, c, p, ms(5)).feasible);
}

TEST(ILPScheduler, AgreesWithBBOnTightPeriod) {
  const Chain c = small_chain();
  const Platform p{2, 10 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, {{1, 2}, {3, 4}}, 2);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  // Probe a few periods from the resource bound upward; whenever the
  // (conservative) ILP schedules, the exact BB must too.
  for (double f : {1.0, 1.15, 1.4, 2.0}) {
    const Seconds period = problem.min_period * f;
    const ILPScheduleResult ilp = ilp_schedule(problem, a, c, p, period);
    const BBResult bb = bb_schedule(problem, a, c, p, period);
    if (ilp.feasible) {
      EXPECT_TRUE(bb.feasible) << "factor " << f;
    }
    if (ilp.feasible) {
      const auto check = validate_pattern(ilp.pattern, a, c, p);
      EXPECT_TRUE(check.valid);
    }
  }
}

TEST(ILPScheduler, HandlesNonContiguousSpecialProcessor) {
  const Chain c = small_chain();
  const Platform p{2, 10 * GB, 12 * GB};
  Allocation a(Partitioning(c, {{1, 1}, {2, 3}, {4, 4}}), {1, 0, 1}, 2);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  const ILPScheduleResult result =
      ilp_schedule(problem, a, c, p, problem.serial_period);
  ASSERT_TRUE(result.feasible);
  const auto check = validate_pattern(result.pattern, a, c, p);
  EXPECT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST(ILPScheduler, MemoryBudgetBlocksSchedules) {
  // Activation floor beyond memory: the ILP must refuse.
  const Chain c = make_uniform_chain(4, ms(5), ms(5), MB, 600 * MB, 600 * MB);
  const Platform p{2, 2 * GB, 12 * GB};
  Allocation a(Partitioning(c, {{1, 1}, {2, 3}, {4, 4}}), {0, 1, 0}, 2);
  const CyclicProblem problem = build_cyclic_problem(a, c, p);
  EXPECT_FALSE(
      ilp_schedule(problem, a, c, p, problem.serial_period).feasible);
}

}  // namespace
}  // namespace madpipe
