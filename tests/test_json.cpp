#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace madpipe::json {
namespace {

TEST(Json, EmptyObject) {
  Writer w;
  w.begin_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, FlatObject) {
  Writer w;
  w.begin_object();
  w.key("a");
  w.value(1);
  w.key("b");
  w.value("two");
  w.key("c");
  w.value(true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":true})");
}

TEST(Json, NestedStructures) {
  Writer w;
  w.begin_object();
  w.key("list");
  w.begin_array();
  w.value(1);
  w.begin_object();
  w.key("x");
  w.null();
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,{"x":null}]})");
}

TEST(Json, EscapesSpecials) {
  Writer w;
  w.begin_object();
  w.key("s");
  w.value("a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, EscapesControlCharacters) {
  Writer w;
  w.begin_array();
  w.value(std::string("\x01"));
  w.end_array();
  EXPECT_EQ(w.str(), "[\"\\u0001\"]");
}

TEST(Json, DoubleFormatting) {
  Writer w;
  w.begin_array();
  w.value(0.5);
  w.value(1e300);
  w.end_array();
  EXPECT_EQ(w.str(), "[0.5,1e+300]");
}

TEST(Json, NonFiniteBecomesNull) {
  Writer w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(Json, ArrayCommas) {
  Writer w;
  w.begin_array();
  w.value(1);
  w.value(2);
  w.value(3);
  w.end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(Json, UnterminatedScopeThrows) {
  Writer w;
  w.begin_object();
  EXPECT_THROW(w.str(), ContractViolation);
}

TEST(Json, MismatchedEndThrows) {
  Writer w;
  w.begin_object();
  EXPECT_THROW(w.end_array(), ContractViolation);
}

TEST(Json, KeyOutsideObjectThrows) {
  Writer w;
  w.begin_array();
  EXPECT_THROW(w.key("nope"), ContractViolation);
}

// --- parser (added for the serve protocol) ---

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").value.is_null());
  EXPECT_EQ(parse("true").value.as_bool(), true);
  EXPECT_EQ(parse("false").value.as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("-12.5e2").value.as_number(), -1250.0);
  EXPECT_EQ(parse("\"hi\"").value.as_string(), "hi");
}

TEST(JsonParse, StructuresAndLookups) {
  const ParseResult result =
      parse(R"({"a": 1, "b": [true, null, "x"], "c": {"d": 2}})");
  ASSERT_TRUE(result.ok()) << result.error;
  const Value& root = result.value;
  EXPECT_DOUBLE_EQ(root.number_or("a", 0.0), 1.0);
  const Value* b = root.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_EQ(b->items()[2].as_string(), "x");
  const Value* c = root.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->number_or("d", 0.0), 2.0);
  EXPECT_EQ(root.find("missing"), nullptr);
  EXPECT_EQ(root.string_or("missing", "dflt"), "dflt");
}

TEST(JsonParse, ObjectsPreserveInsertionOrder) {
  const ParseResult result = parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(result.ok());
  const auto& members = result.value.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  const ParseResult result = parse(R"("a\"b\\c\nd\u00e9")");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.value.as_string(), "a\"b\\c\nd\xc3\xa9");
}

TEST(JsonParse, WriterParserRoundTrip) {
  Writer w;
  w.begin_object();
  w.key("period");
  w.value(0.16630977777777778);
  w.key("name");
  w.value("a \"quoted\" name");
  w.key("flags");
  w.begin_array();
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  const ParseResult result = parse(w.str());
  ASSERT_TRUE(result.ok()) << result.error;
  // Doubles survive exactly: the writer emits shortest-round-trip literals.
  EXPECT_EQ(result.value.number_or("period", 0.0), 0.16630977777777778);
  EXPECT_EQ(result.value.string_or("name", ""), "a \"quoted\" name");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  const char* kBad[] = {
      "",            "{",           "[1,]",        "{\"a\":}",
      "{\"a\" 1}",   "{'a': 1}",    "01",          "1.",
      "1e",          "nul",         "\"unterminated", "\"bad\\q\"",
      "{\"a\":1,}",  "[1 2]",       "{\"a\":1}{",  "\"\\ud800\"",
  };
  for (const char* text : kBad) {
    EXPECT_FALSE(parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParse, RejectsDuplicateKeys) {
  const ParseResult result = parse(R"({"a": 1, "a": 2})");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("duplicate key"), std::string::npos);
}

TEST(JsonParse, RejectsDuplicateKeysInNestedScopes) {
  EXPECT_FALSE(parse(R"({"outer": {"a": 1, "a": 2}})").ok());
  EXPECT_FALSE(parse(R"([{"k": true, "k": true}])").ok());
  EXPECT_FALSE(parse(R"({"a": [{"b": 1}, {"b": 1, "b": 2}]})").ok());
  // The same key at different depths is not a duplicate.
  EXPECT_TRUE(parse(R"({"a": {"a": 1}, "b": {"a": 2}})").ok());
}

TEST(JsonParse, ControlCharactersRoundTripThroughWriterEscapes) {
  std::string raw;
  for (int c = 0; c < 0x20; ++c) raw.push_back(static_cast<char>(c));
  raw += "tail";
  Writer w;
  w.begin_object();
  w.key("s");
  w.value(raw);
  w.end_object();
  // The serialized form never contains a raw control byte (they all become
  // \uXXXX or the short escapes), so the strict parser accepts it...
  for (const char c : w.str()) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  const ParseResult result = parse(w.str());
  ASSERT_TRUE(result.ok()) << result.error;
  // ...and the decoded string is byte-identical, embedded NUL included.
  EXPECT_EQ(result.value.string_or("s", ""), raw);
}

TEST(JsonParse, RejectsRawControlCharacterInString) {
  const std::string text = std::string("\"a") + '\x01' + "b\"";
  const ParseResult result = parse(text);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("control"), std::string::npos);
}

TEST(JsonParse, RejectsTrailingGarbage) {
  const ParseResult result = parse("{} x");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("trailing"), std::string::npos);
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  const ParseResult result = parse(deep);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("nesting"), std::string::npos);
}

TEST(JsonParse, WrongAccessorThrows) {
  const ParseResult result = parse("42");
  ASSERT_TRUE(result.ok());
  EXPECT_THROW(result.value.as_string(), ContractViolation);
  EXPECT_THROW(result.value.items(), ContractViolation);
}

}  // namespace
}  // namespace madpipe::json
