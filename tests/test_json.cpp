#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace madpipe::json {
namespace {

TEST(Json, EmptyObject) {
  Writer w;
  w.begin_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, FlatObject) {
  Writer w;
  w.begin_object();
  w.key("a");
  w.value(1);
  w.key("b");
  w.value("two");
  w.key("c");
  w.value(true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":true})");
}

TEST(Json, NestedStructures) {
  Writer w;
  w.begin_object();
  w.key("list");
  w.begin_array();
  w.value(1);
  w.begin_object();
  w.key("x");
  w.null();
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,{"x":null}]})");
}

TEST(Json, EscapesSpecials) {
  Writer w;
  w.begin_object();
  w.key("s");
  w.value("a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, EscapesControlCharacters) {
  Writer w;
  w.begin_array();
  w.value(std::string("\x01"));
  w.end_array();
  EXPECT_EQ(w.str(), "[\"\\u0001\"]");
}

TEST(Json, DoubleFormatting) {
  Writer w;
  w.begin_array();
  w.value(0.5);
  w.value(1e300);
  w.end_array();
  EXPECT_EQ(w.str(), "[0.5,1e+300]");
}

TEST(Json, NonFiniteBecomesNull) {
  Writer w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(Json, ArrayCommas) {
  Writer w;
  w.begin_array();
  w.value(1);
  w.value(2);
  w.value(3);
  w.end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(Json, UnterminatedScopeThrows) {
  Writer w;
  w.begin_object();
  EXPECT_THROW(w.str(), ContractViolation);
}

TEST(Json, MismatchedEndThrows) {
  Writer w;
  w.begin_object();
  EXPECT_THROW(w.end_array(), ContractViolation);
}

TEST(Json, KeyOutsideObjectThrows) {
  Writer w;
  w.begin_array();
  EXPECT_THROW(w.key("nope"), ContractViolation);
}

}  // namespace
}  // namespace madpipe::json
