#include "models/linearize.hpp"

#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "util/expect.hpp"

namespace madpipe::models {
namespace {

Chain varied_chain() {
  std::vector<Layer> layers;
  for (int i = 0; i < 12; ++i) {
    layers.push_back(Layer{"l" + std::to_string(i),
                           ms(1.0 + (i % 4)), ms(2.0 + (i % 3)),
                           (1.0 + i) * MB, (50.0 - 3 * i) * MB});
  }
  return Chain("varied", 60 * MB, std::move(layers));
}

TEST(Coarsen, ReachesTargetLength) {
  const Chain c = varied_chain();
  for (const int target : {1, 3, 6, 11}) {
    EXPECT_EQ(coarsen(c, target).length(), target) << target;
  }
}

TEST(Coarsen, NoopWhenShortEnough) {
  const Chain c = varied_chain();
  EXPECT_EQ(coarsen(c, 12), c);
  EXPECT_EQ(coarsen(c, 50), c);
}

TEST(Coarsen, PreservesTotals) {
  const Chain c = varied_chain();
  const Chain merged = coarsen(c, 4);
  EXPECT_NEAR(merged.total_compute(), c.total_compute(), 1e-12);
  EXPECT_NEAR(merged.weight_sum(1, merged.length()),
              c.weight_sum(1, c.length()), 1e-6);
  EXPECT_DOUBLE_EQ(merged.activation(0), c.activation(0));
  EXPECT_DOUBLE_EQ(merged.activation(merged.length()),
                   c.activation(c.length()));
}

TEST(Coarsen, BoundaryActivationsAreSubsetOfOriginal) {
  const Chain c = varied_chain();
  const Chain merged = coarsen(c, 5);
  std::vector<Bytes> original;
  for (int l = 0; l <= c.length(); ++l) original.push_back(c.activation(l));
  for (int l = 0; l <= merged.length(); ++l) {
    const Bytes a = merged.activation(l);
    EXPECT_NE(std::find(original.begin(), original.end(), a), original.end())
        << "activation " << a << " not a boundary of the original chain";
  }
}

TEST(Coarsen, MaxBoundaryStrategyRemovesBigBoundariesFirst) {
  const Chain c = varied_chain();  // activations decrease along the chain
  const Chain merged = coarsen(c, 6, CoarsenStrategy::MaxBoundaryActivation);
  // The largest internal boundaries (at the front) must be gone: the first
  // merged layer swallows the earliest layers.
  EXPECT_GT(merged.layer(1).forward_time, c.layer(1).forward_time);
}

TEST(Coarsen, RejectsZeroTarget) {
  EXPECT_THROW(coarsen(varied_chain(), 0), ContractViolation);
}

TEST(Zoo, ListsFourNetworks) {
  EXPECT_EQ(list_networks().size(), 4u);
}

TEST(Zoo, BuildsEveryNetwork) {
  for (const std::string& name : list_networks()) {
    NetworkConfig config;
    config.network = name;
    config.image_size = 256;  // small for test speed
    config.batch = 2;
    const Chain chain = build_network(config);
    EXPECT_GE(chain.length(), 10) << name;
    EXPECT_GT(chain.total_compute(), 0.0) << name;
    EXPECT_EQ(chain.name(), name);
  }
}

TEST(Zoo, ChainLengthConfigCoarsens) {
  NetworkConfig config;
  config.network = "densenet121";
  config.image_size = 256;
  config.chain_length = 20;
  EXPECT_EQ(build_network(config).length(), 20);
}

TEST(Zoo, RejectsUnknownNetwork) {
  NetworkConfig config;
  config.network = "alexnet";
  EXPECT_THROW(build_network(config), ContractViolation);
}

TEST(Zoo, PaperNetworkMatchesPaperSetting) {
  const Chain chain = paper_network("resnet50");
  // Batch 8 of 1000×1000×3 fp32 images: 96 MB input tensor.
  EXPECT_DOUBLE_EQ(chain.activation(0), 8.0 * 3 * 1000 * 1000 * 4);
  EXPECT_LE(chain.length(), 24);
}

TEST(Zoo, ActivationHeavyFrontWeightHeavyBack) {
  // The structural property the paper's analysis hinges on.
  const Chain chain = paper_network("resnet50");
  const int L = chain.length();
  const int half = L / 2;
  EXPECT_GT(chain.stored_activation_sum(1, half),
            chain.stored_activation_sum(half + 1, L));
  EXPECT_LT(chain.weight_sum(1, half), chain.weight_sum(half + 1, L));
}

}  // namespace
}  // namespace madpipe::models
