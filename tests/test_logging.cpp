#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace madpipe::log {
namespace {

/// Restores the global threshold after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = threshold(); }
  void TearDown() override { set_threshold(saved_); }
  Level saved_ = Level::Warn;
};

TEST_F(LoggingTest, DefaultThresholdIsWarn) {
  // The library must be quiet by default (Info and below suppressed).
  EXPECT_LE(static_cast<int>(Level::Warn), static_cast<int>(threshold()));
}

TEST_F(LoggingTest, ThresholdRoundTrips) {
  set_threshold(Level::Debug);
  EXPECT_EQ(threshold(), Level::Debug);
  set_threshold(Level::Off);
  EXPECT_EQ(threshold(), Level::Off);
}

TEST_F(LoggingTest, EmitBelowThresholdIsCheap) {
  set_threshold(Level::Off);
  // Formatting arguments must not be evaluated into output; this mostly
  // checks that the calls are safe at every level when suppressed.
  trace("t", 1);
  debug("d", 2.0);
  info("i");
  warn("w");
  error("e");
  SUCCEED();
}

TEST_F(LoggingTest, MixedArgumentFormatting) {
  set_threshold(Level::Off);  // suppress actual output, exercise the path
  detail::emit(Level::Error, "x=", 42, " y=", 1.5, " z=", "str");
  SUCCEED();
}

}  // namespace
}  // namespace madpipe::log
