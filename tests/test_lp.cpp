#include "solver/lp.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/expect.hpp"

namespace madpipe::solver {
namespace {
using madpipe::ContractViolation;

TEST(Simplex, TwoVariableClassic) {
  // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), objective 36.
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_variable("x", 0.0, 4.0, 3.0);
  const int y = m.add_variable("y", 0.0, 1e9, 5.0);
  m.add_constraint(LinearExpr().add(y, 2.0), Relation::LessEqual, 12.0);
  m.add_constraint(LinearExpr().add(x, 3.0).add(y, 2.0), Relation::LessEqual,
                   18.0);
  const LPResult r = solve_lp(m);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-6);
  EXPECT_NEAR(r.values[x], 2.0, 1e-6);
  EXPECT_NEAR(r.values[y], 6.0, 1e-6);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y  s.t. x + y ≥ 10, x ≥ 2 → (8, 2)? No: cost favors x (2<3),
  // so x = 10 … but x also ≥ 2 only. Optimum: y = 0, x = 10, objective 20.
  Model m;
  const int x = m.add_variable("x", 2.0, 1e9, 2.0);
  const int y = m.add_variable("y", 0.0, 1e9, 3.0);
  m.add_constraint(LinearExpr().add(x, 1.0).add(y, 1.0),
                   Relation::GreaterEqual, 10.0);
  const LPResult r = solve_lp(m);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.values[x], 10.0, 1e-6);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y  s.t. x + 2y = 8, x,y ≥ 0 → (0, 4), objective 4.
  Model m;
  const int x = m.add_variable("x", 0.0, 1e9, 1.0);
  const int y = m.add_variable("y", 0.0, 1e9, 1.0);
  m.add_constraint(LinearExpr().add(x, 1.0).add(y, 2.0), Relation::Equal, 8.0);
  const LPResult r = solve_lp(m);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-6);
  EXPECT_NEAR(r.values[y], 4.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_variable("x", 0.0, 5.0, 1.0);
  m.add_constraint(LinearExpr().add(x, 1.0), Relation::GreaterEqual, 10.0);
  EXPECT_EQ(solve_lp(m).status, LPStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_variable("x", 0.0,
                               std::numeric_limits<double>::infinity(), 1.0);
  m.add_constraint(LinearExpr().add(x, -1.0), Relation::LessEqual, 0.0);
  EXPECT_EQ(solve_lp(m).status, LPStatus::Unbounded);
}

TEST(Simplex, RespectsShiftedLowerBounds) {
  // min x with x ∈ [3, 10]: answer 3.
  Model m;
  const int x = m.add_variable("x", 3.0, 10.0, 1.0);
  const LPResult r = solve_lp(m);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_NEAR(r.values[x], 3.0, 1e-9);
}

TEST(Simplex, RespectsUpperBounds) {
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_variable("x", 0.0, 7.5, 1.0);
  const LPResult r = solve_lp(m);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_NEAR(r.values[x], 7.5, 1e-9);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x − y ≤ −2 with min x + y, x,y ≥ 0 → y ≥ x + 2 → (0, 2).
  Model m;
  const int x = m.add_variable("x", 0.0, 1e9, 1.0);
  const int y = m.add_variable("y", 0.0, 1e9, 1.0);
  m.add_constraint(LinearExpr().add(x, 1.0).add(y, -1.0), Relation::LessEqual,
                   -2.0);
  const LPResult r = solve_lp(m);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex (degeneracy):
  // Bland's rule must still terminate.
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_variable("x", 0.0, 1e9, 1.0);
  const int y = m.add_variable("y", 0.0, 1e9, 1.0);
  m.add_constraint(LinearExpr().add(x, 1.0).add(y, 1.0), Relation::LessEqual,
                   4.0);
  m.add_constraint(LinearExpr().add(x, 2.0).add(y, 2.0), Relation::LessEqual,
                   8.0);
  m.add_constraint(LinearExpr().add(x, 1.0), Relation::LessEqual, 4.0);
  m.add_constraint(LinearExpr().add(y, 1.0), Relation::LessEqual, 4.0);
  const LPResult r = solve_lp(m);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-6);
}

TEST(Simplex, SolutionSatisfiesModel) {
  Model m;
  const int x = m.add_variable("x", 0.0, 9.0, 2.0);
  const int y = m.add_variable("y", 1.0, 9.0, 1.0);
  m.add_constraint(LinearExpr().add(x, 1.0).add(y, 3.0),
                   Relation::GreaterEqual, 6.0);
  const LPResult r = solve_lp(m);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_TRUE(m.is_feasible(r.values));
  (void)x;
  (void)y;
}

TEST(SolverModel, RejectsBadInput) {
  Model m;
  EXPECT_THROW(m.add_variable("x", 5.0, 1.0, 0.0), ContractViolation);
  const int x = m.add_variable("x", 0.0, 1.0, 0.0);
  (void)x;
  EXPECT_THROW(m.add_constraint(LinearExpr().add(7, 1.0),
                                Relation::LessEqual, 0.0),
               ContractViolation);
}

}  // namespace
}  // namespace madpipe::solver
