#include "madpipe/dp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/memory_model.hpp"
#include "util/expect.hpp"

namespace madpipe {
namespace {

MadPipeDPOptions fine_grid() {
  MadPipeDPOptions options;
  options.grid = Discretization{201, 41, 101, RoundingMode::Nearest};
  return options;
}

TEST(MadPipeDP, UniformChainUnlimitedMemory) {
  const Chain c = make_uniform_chain(8, ms(5), ms(10), MB, MB, MB);
  const Platform p{4, 1e6 * GB, 1e6 * GB};
  const auto result = madpipe_dp(c, p, c.total_compute() / 4, fine_grid());
  ASSERT_TRUE(result.allocation.has_value());
  // Perfect balance: 2 layers per processor, 30 ms.
  EXPECT_NEAR(result.period, ms(30), ms(0.5));
}

TEST(MadPipeDP, AllocationCoversChainExactly) {
  const Chain c = make_uniform_chain(10, ms(2), ms(4), MB, 10 * MB, MB);
  const Platform p{3, 10 * GB, 12 * GB};
  const auto result = madpipe_dp(c, p, c.total_compute() / 3, fine_grid());
  ASSERT_TRUE(result.allocation.has_value());
  const Partitioning& parts = result.allocation->partitioning();
  EXPECT_EQ(parts.stage(0).first, 1);
  EXPECT_EQ(parts.stage(parts.num_stages() - 1).last, 10);
}

TEST(MadPipeDP, NormalProcessorsHoldOneStage) {
  const Chain c = make_uniform_chain(12, ms(2), ms(4), MB, 20 * MB, MB);
  const Platform p{4, 2 * GB, 12 * GB};
  const auto result = madpipe_dp(c, p, c.total_compute() / 4, fine_grid());
  ASSERT_TRUE(result.allocation.has_value());
  for (int proc = 0; proc + 1 < p.processors; ++proc) {
    EXPECT_LE(result.allocation->stages_on(proc).size(), 1u) << proc;
  }
}

TEST(MadPipeDP, InfeasibleWhenWeightsDoNotFit) {
  const Chain c = make_uniform_chain(4, ms(5), ms(5), GB, MB, MB);
  const Platform p{2, GB, 12 * GB};
  const auto result = madpipe_dp(c, p, ms(20), fine_grid());
  EXPECT_FALSE(result.allocation.has_value());
  EXPECT_TRUE(std::isinf(result.period));
}

TEST(MadPipeDP, PeriodNonIncreasingInTargetPeriod) {
  // §4.2.3: MadPipe-DP(T̂) is non-increasing in T̂.
  const Chain c = make_uniform_chain(10, ms(2), ms(4), 10 * MB, 150 * MB, MB);
  const Platform p{4, 1.8 * GB, 12 * GB};
  double previous = std::numeric_limits<double>::infinity();
  for (double factor = 0.25; factor <= 3.0; factor *= 1.3) {
    const auto result =
        madpipe_dp(c, p, factor * c.total_compute() / 4, fine_grid());
    EXPECT_LE(result.period, previous * (1.0 + 1e-6)) << factor;
    previous = result.period;
  }
}

TEST(MadPipeDP, PeriodAtLeastLoadLowerBound) {
  const Chain c = make_uniform_chain(9, ms(3), ms(6), MB, 30 * MB, MB);
  const Platform p{3, 4 * GB, 12 * GB};
  const auto result = madpipe_dp(c, p, c.total_compute() / 3, fine_grid());
  ASSERT_TRUE(result.allocation.has_value());
  EXPECT_GE(result.period, c.total_compute() / 3 - 1e-9);
}

TEST(MadPipeDP, MatchesBruteForceOnTinyInstance) {
  // Exhaustive check of the recurrence on a 4-layer, 2-processor instance:
  // enumerate every partitioning and normal/special assignment, evaluate it
  // with the same (undiscretized) cost rules, and compare.
  const Chain c = make_uniform_chain(4, ms(4), ms(8), 5 * MB, 25 * MB, MB);
  const Platform p{2, 0.6 * GB, 12 * GB};
  const Seconds target = 0.6 * c.total_compute();

  // Brute force: stages are contiguous; assignment maps each stage to the
  // one normal processor (at most one stage) or the special one.
  double best = std::numeric_limits<double>::infinity();
  const int L = c.length();
  for (int mask = 0; mask < (1 << (L - 1)); ++mask) {
    std::vector<Stage> stages;
    int first = 1;
    for (int l = 1; l <= L; ++l) {
      if (l == L || (mask & (1 << (l - 1)))) {
        stages.push_back({first, l});
        first = l + 1;
      }
    }
    const int n = static_cast<int>(stages.size());
    for (int assign = 0; assign < (1 << n); ++assign) {
      int normals = 0;
      for (int s = 0; s < n; ++s) {
        if (!(assign & (1 << s))) ++normals;
      }
      if (normals > 1) continue;  // P−1 = 1 normal processor

      // Evaluate with exact delays, walking from the end of the chain.
      Seconds delay = 0.0;
      Seconds special_load = 0.0;
      Bytes special_memory = 0.0;
      double period = 0.0;
      bool feasible = true;
      for (int s = n - 1; s >= 0 && feasible; --s) {
        const Stage& st = stages[static_cast<std::size_t>(s)];
        const int g = activation_count(c, st.first, st.last, delay, target);
        const Seconds link =
            st.first > 1 ? p.boundary_comm_time(c, st.first - 1) : 0.0;
        if (assign & (1 << s)) {  // special
          special_load += c.compute_load(st.first, st.last);
          special_memory += stage_memory(c, st.first, st.last, g - 1);
          if (special_memory > p.memory_per_processor) feasible = false;
          period = std::max({period, special_load, link});
        } else {  // normal
          if (stage_memory(c, st.first, st.last, g) > p.memory_per_processor) {
            feasible = false;
          }
          period = std::max(
              {period, c.compute_load(st.first, st.last), link});
        }
        delay = delay_advance(
            delay_advance(delay, c.compute_load(st.first, st.last), target),
            link, target);
      }
      period = std::max(period, special_load);
      if (feasible) best = std::min(best, period);
    }
  }

  MadPipeDPOptions options;
  options.grid = Discretization{801, 401, 801, RoundingMode::Nearest};
  const auto result = madpipe_dp(c, p, target, options);
  ASSERT_TRUE(std::isfinite(best));
  EXPECT_NEAR(result.period, best, best * 0.02);
}

TEST(MadPipeDP, SpecialDisabledGivesContiguous) {
  const Chain c = make_uniform_chain(10, ms(2), ms(4), MB, 50 * MB, MB);
  const Platform p{3, 2 * GB, 12 * GB};
  MadPipeDPOptions options = fine_grid();
  options.allow_special = false;
  const auto result = madpipe_dp(c, p, c.total_compute() / 3, options);
  ASSERT_TRUE(result.allocation.has_value());
  EXPECT_TRUE(result.allocation->contiguous());
  EXPECT_FALSE(result.uses_special);
}

TEST(MadPipeDP, ValidatesInputs) {
  const Chain c = make_uniform_chain(4, ms(1), ms(1), MB, MB, MB);
  const Platform p{2, GB, 12 * GB};
  EXPECT_THROW(madpipe_dp(c, p, 0.0), ContractViolation);
  MadPipeDPOptions options;
  options.grid.load_points = 5000;
  EXPECT_THROW(madpipe_dp(c, p, ms(1), options), ContractViolation);
}

TEST(MadPipeDP, DelayVariantsBothProduceValidAllocations) {
  const Chain c = make_uniform_chain(8, ms(3), ms(6), MB, 80 * MB, MB);
  const Platform p{3, 1.5 * GB, 12 * GB};
  for (const auto variant : {DelayCommVariant::BoundaryConsistent,
                             DelayCommVariant::PaperLiteral}) {
    MadPipeDPOptions options = fine_grid();
    options.delay_comm_variant = variant;
    const auto result = madpipe_dp(c, p, c.total_compute() / 3, options);
    EXPECT_TRUE(result.allocation.has_value());
  }
}

TEST(MadPipeDpBudget, ExhaustedBudgetWarnsOncePerEngineAcrossThreads) {
  // Regression: the state-budget warning used to be a plain per-call bool,
  // so concurrent probes (speculative bisection, serve workers) spammed one
  // log line each. It is now a per-engine atomic once-guard: every result
  // still reports state_budget_hit, but the process logs exactly once per
  // engine no matter how many threads trip the valve at the same time.
  const Chain c = make_uniform_chain(12, ms(2), ms(4), MB, 20 * MB, MB);
  const Platform p{4, 2 * GB, 12 * GB};

  for (const auto engine : {DpEngine::FlatIterative, DpEngine::ReferenceRecursive}) {
    detail::reset_state_budget_warnings();
    constexpr int kThreads = 8;
    std::atomic<int> budget_hits{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        MadPipeDPOptions options = fine_grid();
        options.engine = engine;
        options.max_states = 1;  // guaranteed to trip immediately
        const auto result = madpipe_dp(c, p, c.total_compute() / 4, options);
        if (result.state_budget_hit) {
          budget_hits.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    // Every probe saw (and reported) the truncation...
    EXPECT_EQ(budget_hits.load(), kThreads) << static_cast<int>(engine);
    // ...but only one warning was emitted for the whole stampede.
    EXPECT_EQ(detail::state_budget_warning_count(), 1)
        << static_cast<int>(engine);
  }

  // The guard latches: a later hit on the same engine stays silent. (The
  // Reference engine is the one whose guard is still armed — the loop above
  // reset both guards before its Reference round.)
  MadPipeDPOptions options = fine_grid();
  options.engine = DpEngine::ReferenceRecursive;
  options.max_states = 1;
  const auto again = madpipe_dp(c, p, c.total_compute() / 4, options);
  EXPECT_TRUE(again.state_budget_hit);
  EXPECT_EQ(detail::state_budget_warning_count(), 1);
  detail::reset_state_budget_warnings();
}

}  // namespace
}  // namespace madpipe
