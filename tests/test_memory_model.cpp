#include "core/memory_model.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace madpipe {
namespace {

Chain chain4() {
  std::vector<Layer> layers{
      {"l1", ms(2), ms(4), 1 * MB, 40 * MB},
      {"l2", ms(2), ms(4), 2 * MB, 30 * MB},
      {"l3", ms(2), ms(4), 4 * MB, 20 * MB},
      {"l4", ms(2), ms(4), 8 * MB, 10 * MB},
  };
  return Chain("m", 50 * MB, std::move(layers));
}

TEST(MemoryModel, WeightsAreTripled) {
  const Chain c = chain4();
  EXPECT_DOUBLE_EQ(weights_memory(c, 2, 3), 18 * MB);
}

TEST(MemoryModel, ActivationsPerBatchAreLayerInputs) {
  const Chain c = chain4();
  EXPECT_DOUBLE_EQ(activations_memory_per_batch(c, 2, 3), (40 + 30) * MB);
  EXPECT_DOUBLE_EQ(activations_memory_per_batch(c, 1, 1), 50 * MB);
}

TEST(MemoryModel, BuffersAtBothCuts) {
  const Chain c = chain4();
  EXPECT_DOUBLE_EQ(comm_buffers_memory(c, 2, 3), 2 * (40 + 20) * MB);
}

TEST(MemoryModel, BuffersDropAtChainEnds) {
  const Chain c = chain4();
  EXPECT_DOUBLE_EQ(comm_buffers_memory(c, 1, 3), 2 * 20 * MB);
  EXPECT_DOUBLE_EQ(comm_buffers_memory(c, 2, 4), 2 * 40 * MB);
  EXPECT_DOUBLE_EQ(comm_buffers_memory(c, 1, 4), 0.0);
}

TEST(MemoryModel, StageMemoryComposition) {
  const Chain c = chain4();
  const Bytes expected = weights_memory(c, 2, 3) +
                         3.0 * activations_memory_per_batch(c, 2, 3) +
                         comm_buffers_memory(c, 2, 3);
  EXPECT_DOUBLE_EQ(stage_memory(c, 2, 3, 3), expected);
}

TEST(MemoryModel, StageMemoryZeroBatches) {
  const Chain c = chain4();
  EXPECT_DOUBLE_EQ(stage_memory(c, 2, 3, 0),
                   weights_memory(c, 2, 3) + comm_buffers_memory(c, 2, 3));
  EXPECT_THROW(stage_memory(c, 2, 3, -1), ContractViolation);
}

TEST(MemoryModel, ActivationCountCeil) {
  const Chain c = chain4();  // U(2,3) = 12 ms
  EXPECT_EQ(activation_count(c, 2, 3, 0.0, ms(12)), 1);
  EXPECT_EQ(activation_count(c, 2, 3, 0.0, ms(11)), 2);
  EXPECT_EQ(activation_count(c, 2, 3, ms(1), ms(12)), 2);
  EXPECT_EQ(activation_count(c, 2, 3, ms(24), ms(12)), 3);
}

TEST(MemoryModel, ActivationCountAtLeastOne) {
  const Chain c = chain4();
  EXPECT_GE(activation_count(c, 2, 3, 0.0, 100.0), 1);
}

TEST(MemoryModel, ActivationCountRobustToRoundoff) {
  const Chain c = chain4();
  // U(1,4) = 24 ms built from 8 additions; exactly 2 periods of 12 ms.
  EXPECT_EQ(activation_count(c, 1, 4, 0.0, ms(12)), 2);
}

// --- The ⊕ operator (delay_advance) ---------------------------------------

TEST(DelayAdvance, NoGroupCrossingIsPlainAddition) {
  // x = 3, y = 2, T̂ = 10: ceil(3/10) = ceil(5/10) = 1 → 5.
  EXPECT_DOUBLE_EQ(delay_advance(3.0, 2.0, 10.0), 5.0);
}

TEST(DelayAdvance, GroupCrossingRoundsUpFirst) {
  // x = 3, y = 9, T̂ = 10: ceil(3/10)=1, ceil(12/10)=2 → 10·1 + 9 = 19.
  EXPECT_DOUBLE_EQ(delay_advance(3.0, 9.0, 10.0), 19.0);
}

TEST(DelayAdvance, ZeroTaskIsIdentity) {
  EXPECT_DOUBLE_EQ(delay_advance(7.0, 0.0, 10.0), 7.0);
}

TEST(DelayAdvance, FromZero) {
  // ceil(0)=0; ceil(y/T) ≥ 1 → crossing: 10·0 + y = y.
  EXPECT_DOUBLE_EQ(delay_advance(0.0, 4.0, 10.0), 4.0);
}

TEST(DelayAdvance, ExactMultipleDoesNotCross) {
  // x = 10 (exactly one period), y = 5: ceil(10/10)=1, ceil(15/10)=2 →
  // crossing → 10·1 + 5 = 15 = plain addition here.
  EXPECT_DOUBLE_EQ(delay_advance(10.0, 5.0, 10.0), 15.0);
}

TEST(DelayAdvance, MonotoneInX) {
  for (double x = 0.0; x < 30.0; x += 0.7) {
    EXPECT_LE(delay_advance(x, 4.0, 10.0), delay_advance(x + 0.5, 4.0, 10.0));
  }
}

TEST(DelayAdvance, ResultAtLeastSum) {
  for (double x = 0.0; x < 30.0; x += 0.7) {
    for (double y = 0.0; y < 25.0; y += 1.1) {
      EXPECT_GE(delay_advance(x, y, 10.0) + 1e-12, x + y);
    }
  }
}

TEST(DelayAdvance, RejectsNegative) {
  EXPECT_THROW(delay_advance(-1.0, 1.0, 10.0), ContractViolation);
  EXPECT_THROW(delay_advance(1.0, 1.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace madpipe
