#include "solver/milp.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace madpipe::solver {
namespace {

TEST(MILP, PureLpPassesThrough) {
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_variable("x", 0.0, 4.0, 1.0);
  const MILPResult r = solve_milp(m);
  ASSERT_EQ(r.status, MILPStatus::Optimal);
  EXPECT_NEAR(r.values[x], 4.0, 1e-6);
}

TEST(MILP, RoundsAwayFractionalRelaxation) {
  // max x + y s.t. 2x + 2y ≤ 5, integers → LP gives 2.5 total; MILP 2.
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_variable("x", 0.0, 10.0, 1.0, VarType::Integer);
  const int y = m.add_variable("y", 0.0, 10.0, 1.0, VarType::Integer);
  m.add_constraint(LinearExpr().add(x, 2.0).add(y, 2.0), Relation::LessEqual,
                   5.0);
  const MILPResult r = solve_milp(m);
  ASSERT_EQ(r.status, MILPStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_TRUE(m.is_feasible(r.values));
}

TEST(MILP, KnapsackMatchesBruteForce) {
  const std::vector<double> weight{3, 5, 7, 4, 6};
  const std::vector<double> value{4, 6, 9, 5, 7};
  const double capacity = 13;

  Model m;
  m.set_sense(Sense::Maximize);
  LinearExpr total_weight;
  std::vector<int> items;
  for (std::size_t i = 0; i < weight.size(); ++i) {
    items.push_back(m.add_variable("i" + std::to_string(i), 0.0, 1.0,
                                   value[i], VarType::Integer));
    total_weight.add(items.back(), weight[i]);
  }
  m.add_constraint(std::move(total_weight), Relation::LessEqual, capacity);

  double best = 0.0;
  for (int mask = 0; mask < (1 << 5); ++mask) {
    double w = 0.0, v = 0.0;
    for (int i = 0; i < 5; ++i) {
      if (mask & (1 << i)) {
        w += weight[static_cast<std::size_t>(i)];
        v += value[static_cast<std::size_t>(i)];
      }
    }
    if (w <= capacity) best = std::max(best, v);
  }

  const MILPResult r = solve_milp(m);
  ASSERT_EQ(r.status, MILPStatus::Optimal);
  EXPECT_NEAR(r.objective, best, 1e-6);
}

TEST(MILP, IntegerInfeasibleDetected) {
  // 2x = 3 with x integer: LP feasible (x = 1.5), MILP infeasible.
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0, 1.0, VarType::Integer);
  m.add_constraint(LinearExpr().add(x, 2.0), Relation::Equal, 3.0);
  EXPECT_EQ(solve_milp(m).status, MILPStatus::Infeasible);
}

TEST(MILP, LpInfeasibleDetected) {
  Model m;
  const int x = m.add_variable("x", 0.0, 1.0, 1.0, VarType::Integer);
  m.add_constraint(LinearExpr().add(x, 1.0), Relation::GreaterEqual, 5.0);
  EXPECT_EQ(solve_milp(m).status, MILPStatus::Infeasible);
}

TEST(MILP, MixedIntegerContinuous) {
  // max 2x + y: x integer ≤ 2.5 (→ 2), y ≤ 1.3 continuous.
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_variable("x", 0.0, 2.5, 2.0, VarType::Integer);
  const int y = m.add_variable("y", 0.0, 1.3, 1.0);
  const MILPResult r = solve_milp(m);
  ASSERT_EQ(r.status, MILPStatus::Optimal);
  EXPECT_NEAR(r.values[x], 2.0, 1e-6);
  EXPECT_NEAR(r.values[y], 1.3, 1e-6);
  EXPECT_NEAR(r.objective, 5.3, 1e-6);
}

TEST(MILP, EqualityWithIntegers) {
  // x + y = 7, maximize x − y, both integer in [0,5] → x = 5, y = 2.
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_variable("x", 0.0, 5.0, 1.0, VarType::Integer);
  const int y = m.add_variable("y", 0.0, 5.0, -1.0, VarType::Integer);
  m.add_constraint(LinearExpr().add(x, 1.0).add(y, 1.0), Relation::Equal, 7.0);
  const MILPResult r = solve_milp(m);
  ASSERT_EQ(r.status, MILPStatus::Optimal);
  EXPECT_NEAR(r.values[x], 5.0, 1e-6);
  EXPECT_NEAR(r.values[y], 2.0, 1e-6);
}

TEST(MILP, NodeLimitReportsTruncation) {
  // A 12-item knapsack with the node budget strangled to 1 node: the solver
  // must not claim optimality.
  Model m;
  m.set_sense(Sense::Maximize);
  LinearExpr total;
  for (int i = 0; i < 12; ++i) {
    const int x = m.add_variable("x" + std::to_string(i), 0.0, 1.0,
                                 1.0 + 0.1 * i, VarType::Integer);
    total.add(x, 2.0 + 0.3 * i);
  }
  m.add_constraint(std::move(total), Relation::LessEqual, 11.0);
  MILPOptions options;
  options.max_nodes = 1;
  const MILPResult r = solve_milp(m, options);
  EXPECT_NE(r.status, MILPStatus::Optimal);
}

TEST(MILP, CountsNodes) {
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_variable("x", 0.0, 10.0, 1.0, VarType::Integer);
  m.add_constraint(LinearExpr().add(x, 2.0), Relation::LessEqual, 5.0);
  const MILPResult r = solve_milp(m);
  EXPECT_GE(r.nodes_explored, 1);
}

}  // namespace
}  // namespace madpipe::solver
