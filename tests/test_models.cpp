#include <gtest/gtest.h>

#include "models/cost_model.hpp"
#include "models/densenet.hpp"
#include "models/inception.hpp"
#include "models/netdef.hpp"
#include "models/resnet.hpp"
#include "util/expect.hpp"

namespace madpipe::models {
namespace {

long long total_params(const std::vector<BlockStats>& blocks) {
  long long total = 0;
  for (const BlockStats& b : blocks) total += b.params;
  return total;
}

double total_flops(const std::vector<BlockStats>& blocks) {
  double total = 0;
  for (const BlockStats& b : blocks) total += b.forward_flops;
  return total;
}

TEST(NetDef, ConvOutSize) {
  EXPECT_EQ(conv_out_size(224, 7, 2, 3), 112);
  EXPECT_EQ(conv_out_size(56, 3, 1, 1), 56);
  EXPECT_EQ(conv_out_size(224, 3, 2, 0), 111);
  EXPECT_THROW(conv_out_size(2, 7, 1, 0), ContractViolation);
}

TEST(NetDef, ConvParamsAndShape) {
  BlockBuilder b("t", {3, 32, 32});
  b.conv(16, 3, 1, 1, 1, /*batch_norm=*/false);
  const BlockStats stats = b.finish();
  EXPECT_EQ(stats.params, 3 * 3 * 3 * 16 + 16);  // kernel + bias
  EXPECT_EQ(stats.output, (Tensor{16, 32, 32}));
  // 2 FLOPs per MAC at each of 32·32 positions.
  EXPECT_DOUBLE_EQ(stats.forward_flops, 2.0 * 3 * 3 * 3 * 16 * 32 * 32);
}

TEST(NetDef, BatchNormAddsTwoPerChannel) {
  BlockBuilder b("t", {3, 8, 8});
  b.conv(4, 1, 1, 0, 1, true);
  EXPECT_EQ(b.finish().params, 3 * 4 + 2 * 4);
}

TEST(NetDef, RectConv) {
  BlockBuilder b("t", {8, 16, 16});
  b.conv_rect(8, 1, 7);
  const BlockStats stats = b.finish();
  EXPECT_EQ(stats.output, (Tensor{8, 16, 16}));
  EXPECT_EQ(stats.params, 1LL * 7 * 8 * 8 + 2 * 8);
}

TEST(NetDef, PoolingChangesShapeOnly) {
  BlockBuilder b("t", {4, 17, 17});
  b.max_pool(3, 2, 0);
  const BlockStats stats = b.finish();
  EXPECT_EQ(stats.output, (Tensor{4, 8, 8}));
  EXPECT_EQ(stats.params, 0);
}

TEST(NetDef, FullyConnected) {
  BlockBuilder b("t", {16, 1, 1});
  b.fully_connected(10);
  const BlockStats stats = b.finish();
  EXPECT_EQ(stats.params, 16 * 10 + 10);
  EXPECT_EQ(stats.output, (Tensor{10, 1, 1}));
}

TEST(NetDef, ConcatAddsChannels) {
  BlockBuilder main("t", {4, 8, 8});
  main.conv(6, 1);
  BlockBuilder branch("t/b", {4, 8, 8});
  branch.conv(10, 1);
  main.concat_branch(branch.finish());
  EXPECT_EQ(main.shape().channels, 16);
}

TEST(NetDef, ResidualRequiresMatchingShape) {
  BlockBuilder b("t", {4, 8, 8});
  EXPECT_THROW(b.add_residual(Tensor{8, 8, 8}), ContractViolation);
}

// --- Reference parameter counts (per the original papers / torchvision) ---

TEST(ResNet, Resnet50ParameterCount) {
  const auto blocks = build_resnet50({3, 224, 224});
  // torchvision: 25.56M; our BN-for-bias accounting lands within 2%.
  EXPECT_NEAR(static_cast<double>(total_params(blocks)), 25.56e6, 0.5e6);
}

TEST(ResNet, Resnet101ParameterCount) {
  const auto blocks = build_resnet101({3, 224, 224});
  EXPECT_NEAR(static_cast<double>(total_params(blocks)), 44.55e6, 0.9e6);
}

TEST(ResNet, Resnet50FlopsAt224) {
  const auto blocks = build_resnet50({3, 224, 224});
  // ~4.1 GFLOPs (counting MAC = 2 FLOPs) per image.
  EXPECT_NEAR(total_flops(blocks), 8.2e9, 0.8e9);
}

TEST(ResNet, BlockCountMatchesArchitecture) {
  EXPECT_EQ(build_resnet50({3, 224, 224}).size(), 1u + 3 + 4 + 6 + 3 + 1);
  EXPECT_EQ(build_resnet101({3, 224, 224}).size(), 1u + 3 + 4 + 23 + 3 + 1);
}

TEST(ResNet, SpatialResolutionHalvesPerStage) {
  const auto blocks = build_resnet50({3, 224, 224});
  EXPECT_EQ(blocks[0].output.height, 56);   // stem: /4
  EXPECT_EQ(blocks[3].output.height, 56);   // conv2_x
  EXPECT_EQ(blocks[7].output.height, 28);   // conv3_x
  EXPECT_EQ(blocks[13].output.height, 14);  // conv4_x
  EXPECT_EQ(blocks[16].output.height, 7);   // conv5_x
}

TEST(Inception, ParameterCount) {
  const auto blocks = build_inception_v3({3, 299, 299});
  // torchvision (without aux classifier): ~23.8M.
  EXPECT_NEAR(static_cast<double>(total_params(blocks)), 23.8e6, 1.5e6);
}

TEST(Inception, ChannelProgression) {
  const auto blocks = build_inception_v3({3, 299, 299});
  EXPECT_EQ(blocks[1].output.channels, 192);   // stem
  EXPECT_EQ(blocks[2].output.channels, 256);   // mixed5b
  EXPECT_EQ(blocks[4].output.channels, 288);   // mixed5d
  EXPECT_EQ(blocks[5].output.channels, 768);   // mixed6a
  EXPECT_EQ(blocks[10].output.channels, 1280);  // mixed7a
  EXPECT_EQ(blocks[12].output.channels, 2048);  // mixed7c
}

TEST(Inception, RejectsTinyInputs) {
  EXPECT_THROW(build_inception_v3({3, 32, 32}), ContractViolation);
}

TEST(DenseNet, ParameterCount) {
  const auto blocks = build_densenet121({3, 224, 224});
  // torchvision: 7.98M.
  EXPECT_NEAR(static_cast<double>(total_params(blocks)), 7.98e6, 0.5e6);
}

TEST(DenseNet, ChannelsGrowByGrowthRate) {
  const auto blocks = build_densenet121({3, 224, 224});
  // stem: 64 channels; each dense layer adds 32.
  EXPECT_EQ(blocks[0].output.channels, 64);
  EXPECT_EQ(blocks[1].output.channels, 96);
  EXPECT_EQ(blocks[6].output.channels, 64 + 6 * 32);  // end of block 1
  // transition halves: 256 → 128.
  EXPECT_EQ(blocks[7].output.channels, 128);
}

TEST(DenseNet, BlockCount) {
  // stem + 6 + trans + 12 + trans + 24 + trans + 16 + head = 63.
  EXPECT_EQ(build_densenet121({3, 224, 224}).size(), 63u);
}

// --- Cost model ------------------------------------------------------------

TEST(CostModel, LayerDurationsScaleWithBatch) {
  const BlockStats block{"b", 1e9, 1000, {16, 10, 10}};
  const DeviceModel device;
  const Layer one = block_to_layer(block, 1, device);
  const Layer eight = block_to_layer(block, 8, device);
  EXPECT_NEAR((eight.forward_time - device.op_overhead),
              8.0 * (one.forward_time - device.op_overhead), 1e-12);
}

TEST(CostModel, BackwardCostsDouble) {
  const BlockStats block{"b", 1e9, 1000, {16, 10, 10}};
  const DeviceModel device;
  const Layer layer = block_to_layer(block, 4, device);
  EXPECT_NEAR(layer.backward_time - device.op_overhead,
              2.0 * (layer.forward_time - device.op_overhead), 1e-12);
}

TEST(CostModel, SizesInBytes) {
  const BlockStats block{"b", 1e9, 1000, {16, 10, 10}};
  const DeviceModel device;
  const Layer layer = block_to_layer(block, 4, device);
  EXPECT_DOUBLE_EQ(layer.weight_bytes, 4000.0);
  EXPECT_DOUBLE_EQ(layer.output_bytes, 16.0 * 10 * 10 * 4 * 4);
}

TEST(CostModel, ChainIncludesInputActivation) {
  const std::vector<BlockStats> blocks{{"b", 1e9, 1000, {16, 10, 10}}};
  const Chain chain =
      blocks_to_chain("net", {3, 10, 10}, blocks, 2, DeviceModel{});
  EXPECT_DOUBLE_EQ(chain.activation(0), 3.0 * 10 * 10 * 4 * 2);
  EXPECT_EQ(chain.length(), 1);
}

}  // namespace
}  // namespace madpipe::models
