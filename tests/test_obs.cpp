// Tests for the observability layer (src/obs/): span recording, ring-wrap
// semantics, Chrome trace-event export (round-tripped through our own JSON
// parser), cross-thread attribution, concurrent drain (the seqlock path —
// these run under TSan in CI), and the registry's parity with the legacy
// SolverStats / PlannerStats / ServeStats structs on real solver, planner
// and serve runs.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/chain.hpp"
#include "core/platform.hpp"
#include "madpipe/planner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "solver/milp.hpp"
#include "solver/model.hpp"
#include "util/json.hpp"

namespace madpipe {
namespace {

/// install_trace for the duration of a scope, uninstalling on exit so no
/// test leaves tracing armed for its neighbours.
struct ScopedTrace {
  explicit ScopedTrace(std::size_t capacity = 4096) {
    obs::install_trace(capacity);
  }
  ~ScopedTrace() { obs::uninstall_trace(); }
};

const obs::TraceEvent* find_event(const std::vector<obs::TraceEvent>& events,
                                  const std::string& name) {
  for (const obs::TraceEvent& event : events) {
    if (event.name != nullptr && name == event.name) return &event;
  }
  return nullptr;
}

TEST(ObsTrace, DisarmedRecordsNothing) {
  ASSERT_FALSE(obs::trace_enabled());
  { obs::Span span("obs_test_disarmed", obs::kCatPlanner); }
  ScopedTrace trace;
  // Installing replaces any buffered events; nothing from before survives
  // and the disarmed span above was never recorded.
  EXPECT_TRUE(obs::drain_trace().empty());
}

TEST(ObsTrace, NestedSpansRecordContainment) {
  ScopedTrace trace;
  {
    obs::Span outer("obs_test_outer", obs::kCatServe);
    {
      obs::Span inner("obs_test_inner", obs::kCatPlanner);
      inner.arg("value", 42);
    }
  }
  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent* outer = find_event(events, "obs_test_outer");
  const obs::TraceEvent* inner = find_event(events, "obs_test_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_STREQ(outer->category, obs::kCatServe);
  EXPECT_STREQ(inner->category, obs::kCatPlanner);
  // Same thread, and the inner interval nests inside the outer one.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  ASSERT_NE(inner->arg1_key, nullptr);
  EXPECT_STREQ(inner->arg1_key, "value");
  EXPECT_EQ(inner->arg1_value, 42);
}

TEST(ObsTrace, RingWrapKeepsNewestEvents) {
  ScopedTrace trace(4);  // exactly 4 slots (already a power of two)
  for (int i = 0; i < 10; ++i) {
    obs::Span span("obs_test_wrap", obs::kCatPlanner);
    span.arg("i", i);
  }
  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  ASSERT_EQ(events.size(), 4u);
  // The ring overwrites oldest-first: the survivors are 6, 7, 8, 9.
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].arg1_value, static_cast<long long>(6 + k));
  }
}

TEST(ObsTrace, ThreadsGetDistinctIdsAndAllEventsAreDrained) {
  ScopedTrace trace;
  {
    obs::Span span("obs_test_main", obs::kCatServe);
  }
  std::thread worker([] { obs::Span span("obs_test_worker", obs::kCatServe); });
  worker.join();
  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  const obs::TraceEvent* main_event = find_event(events, "obs_test_main");
  const obs::TraceEvent* worker_event = find_event(events, "obs_test_worker");
  ASSERT_NE(main_event, nullptr);
  ASSERT_NE(worker_event, nullptr);
  EXPECT_NE(main_event->tid, worker_event->tid);
}

TEST(ObsTrace, EmitCompleteRecordsHandMeasuredPhase) {
  ScopedTrace trace;
  const std::int64_t start = obs::now_ns();
  obs::emit_complete("obs_test_phase", obs::kCatServe, start, 12345,
                     "queued", 7);
  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  const obs::TraceEvent* event = find_event(events, "obs_test_phase");
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->start_ns, start);
  EXPECT_EQ(event->dur_ns, 12345);
  EXPECT_EQ(event->arg1_value, 7);
}

TEST(ObsTrace, ChromeJsonRoundTripsThroughParser) {
  ScopedTrace trace;
  {
    obs::Span outer("obs_test_chrome_outer", obs::kCatServe);
    obs::Span inner("obs_test_chrome_inner", obs::kCatSolver);
    inner.arg("nodes", 3);
  }
  const std::string text = obs::trace_to_chrome_json();
  const json::ParseResult parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const json::Value* trace_events = parsed.value.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  bool saw_inner = false, saw_metadata = false;
  for (const json::Value& event : trace_events->items()) {
    const std::string ph = event.string_or("ph", "");
    if (ph == "M") {
      saw_metadata = true;  // thread-name metadata record
      continue;
    }
    ASSERT_EQ(ph, "X") << text;
    EXPECT_NE(event.find("ts"), nullptr);
    EXPECT_NE(event.find("dur"), nullptr);
    EXPECT_NE(event.find("tid"), nullptr);
    if (event.string_or("name", "") == "obs_test_chrome_inner") {
      saw_inner = true;
      EXPECT_EQ(event.string_or("cat", ""), "solver");
      const json::Value* args = event.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->number_or("nodes", -1), 3.0);
    }
  }
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_metadata);
}

// The seqlock path: one thread records spans while the main thread drains
// concurrently. Runs under TSan in CI — any torn read or missing atomic
// would be reported there; here we just assert nothing crashes and drained
// events are well-formed.
TEST(ObsTrace, ConcurrentDrainWhileRecording) {
  ScopedTrace trace(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      obs::Span span("obs_test_concurrent", obs::kCatPlanner);
      span.arg("x", 1);
    }
  });
  for (int i = 0; i < 200; ++i) {
    for (const obs::TraceEvent& event : obs::drain_trace()) {
      ASSERT_NE(event.name, nullptr);
      ASSERT_GE(event.dur_ns, 0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(ObsMetrics, HistogramQuantileInterpolatesWithinBuckets) {
  // Buckets (0,1], (1,2], (2,4], +Inf with per-bucket counts 2, 2, 4, 0.
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  const std::vector<long long> counts{2, 2, 4, 0};
  // rank(0.5) = 4 → exactly exhausts bucket 1 → its upper bound.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.5), 2.0);
  // rank(0.25) = 2 → exhausts bucket 0 → 1.0.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.25), 1.0);
  // rank(0.75) = 6 → halfway through bucket 2 → 2 + 0.5·(4−2) = 3.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.75), 3.0);
  // q clamps to [0, 1].
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 2.0), 4.0);
}

TEST(ObsMetrics, HistogramQuantileClampsInfBucketAndHandlesEmpty) {
  const std::vector<double> bounds{1.0, 2.0};
  // All mass in +Inf: fixed buckets cannot say more than the last bound.
  const std::vector<long long> overflow{0, 0, 5};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, overflow, 0.99), 2.0);
  // Mass split across a finite bucket and +Inf: low quantiles interpolate,
  // high quantiles clamp.
  const std::vector<long long> mixed{4, 0, 4};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, mixed, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, mixed, 0.9), 2.0);
  // Empty histogram → 0.
  const std::vector<long long> empty{0, 0, 0};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, empty, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile({}, {}, 0.5), 0.0);
}

TEST(ObsMetrics, HistogramQuantileLiveOverloadMatchesRawBuckets) {
  obs::Registry& registry = obs::Registry::global();
  obs::Histogram& histogram =
      registry.histogram("obs_test_quantile_hist", {1.0, 2.0, 4.0});
  for (int i = 0; i < 4; ++i) histogram.observe(0.5);
  for (int i = 0; i < 4; ++i) histogram.observe(3.0);
  std::vector<long long> counts;
  for (std::size_t i = 0; i <= histogram.bounds().size(); ++i) {
    counts.push_back(histogram.bucket_count(i));
  }
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(histogram, 0.5),
                   obs::histogram_quantile(histogram.bounds(), counts, 0.5));
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(histogram, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(histogram, 0.75), 3.0);
}

TEST(ObsMetrics, RegistryJsonDumpRoundTrips) {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("obs_test_counter", "test counter").add(3);
  registry.histogram("obs_test_hist").observe(0.5);
  const json::ParseResult parsed = json::parse(registry.json());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("schema", ""), obs::kMetricsSchema);
  ASSERT_NE(parsed.value.find("counters"), nullptr);
  ASSERT_NE(parsed.value.find("gauges"), nullptr);
  ASSERT_NE(parsed.value.find("histograms"), nullptr);
  // Prometheus text exposition of the same registry mentions the counter.
  const std::string text = registry.text();
  EXPECT_NE(text.find("# TYPE obs_test_counter counter"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

// After reset_for_tests(), one solve_milp must publish exactly its
// SolverStats into the cumulative madpipe_solver_* counters.
TEST(ObsRegistryParity, SolverStatsMatchRegistryAfterOneMilp) {
  obs::Registry& registry = obs::Registry::global();
  registry.reset_for_tests();

  solver::Model model;
  model.set_sense(solver::Sense::Maximize);
  solver::LinearExpr total;
  for (int i = 0; i < 6; ++i) {
    const int x = model.add_variable("x" + std::to_string(i), 0.0, 1.0,
                                     1.0 + i, solver::VarType::Integer);
    total.add(x, 2.0 + i);
  }
  model.add_constraint(std::move(total), solver::Relation::LessEqual, 9.0);
  const solver::MILPResult result = solver::solve_milp(model);
  ASSERT_EQ(result.status, solver::MILPStatus::Optimal);

  EXPECT_EQ(registry.counter("madpipe_solver_pivots_total").value(),
            result.stats.pivots);
  EXPECT_EQ(registry.counter("madpipe_solver_lp_solves_total").value(),
            result.stats.lp_solves);
  EXPECT_EQ(registry.counter("madpipe_solver_bb_nodes_total").value(),
            result.stats.nodes_explored);
  EXPECT_EQ(registry.counter("madpipe_solver_warm_start_hits_total").value(),
            result.stats.warm_start_hits);
  EXPECT_EQ(
      registry.counter("madpipe_solver_heuristic_incumbents_total").value(),
      result.stats.heuristic_incumbents);
}

// One plan_madpipe run publishes exactly its PlannerStats.
TEST(ObsRegistryParity, PlannerStatsMatchRegistryAfterOnePlan) {
  obs::Registry& registry = obs::Registry::global();
  registry.reset_for_tests();

  const Chain chain = make_uniform_chain(4, ms(2), ms(4), MB, 8 * MB, MB);
  const Platform platform{2, 2 * GB, 12 * GB};
  const std::optional<Plan> plan = plan_madpipe(chain, platform);
  ASSERT_TRUE(plan.has_value());

  EXPECT_EQ(registry.counter("madpipe_planner_dp_probes_total").value(),
            plan->stats.dp_probes);
  EXPECT_EQ(registry.counter("madpipe_planner_dp_states_total").value(),
            plan->stats.dp_states);
  EXPECT_EQ(registry.counter("madpipe_planner_phase1_probes_total").value(),
            plan->stats.phase1_probes);
  EXPECT_EQ(registry.counter("madpipe_planner_phase2_probes_total").value(),
            plan->stats.phase2_probes);
  EXPECT_EQ(registry.counter("madpipe_planner_memo_hits_total").value(),
            plan->stats.memo_hits);
  // Exactly one plan → one observation in each phase-wall histogram.
  EXPECT_EQ(registry.histogram("madpipe_planner_phase1_seconds").count(), 1);
  EXPECT_EQ(registry.histogram("madpipe_planner_phase2_seconds").count(), 1);
}

// The serve layer bumps its registry metrics live; after a miss + a hit the
// cumulative counters must equal the ServeStats snapshot.
TEST(ObsRegistryParity, ServeMetricsMatchServeStats) {
  obs::Registry& registry = obs::Registry::global();
  registry.reset_for_tests();

  const Chain chain = make_uniform_chain(4, ms(2), ms(4), MB, 8 * MB, MB);
  const Platform platform{2, 2 * GB, 12 * GB};
  serve::ServiceOptions options;
  options.workers = 1;
  serve::PlanService service(options);
  const serve::PlanRequest request{"obs", chain, platform,
                                   serve::PlannerKind::MadPipe,
                                   MadPipeOptions{}, 0.0};
  ASSERT_EQ(service.plan(request).status, serve::ResponseStatus::Ok);
  ASSERT_EQ(service.plan(request).status, serve::ResponseStatus::Ok);

  const serve::ServeStats stats = service.stats();
  ASSERT_EQ(stats.requests, 2);
  ASSERT_EQ(stats.hits, 1);
  ASSERT_EQ(stats.misses, 1);
  EXPECT_EQ(registry.counter("madpipe_serve_requests_total").value(),
            stats.requests);
  EXPECT_EQ(registry.counter("madpipe_serve_hits_total").value(), stats.hits);
  EXPECT_EQ(registry.counter("madpipe_serve_misses_total").value(),
            stats.misses);
  EXPECT_EQ(registry.counter("madpipe_serve_planner_runs_total").value(),
            stats.planner_runs);
  // stats() refreshes the cache gauges from the cache counters.
  EXPECT_EQ(registry.gauge("madpipe_serve_cache_entries").value(),
            static_cast<double>(stats.cache_entries));
  // Latency histograms saw one hit and one miss.
  EXPECT_EQ(registry.histogram("madpipe_serve_hit_latency_seconds").count(),
            1);
  EXPECT_EQ(registry.histogram("madpipe_serve_miss_latency_seconds").count(),
            1);
}

}  // namespace
}  // namespace madpipe
