#include "schedule/one_f_one_b.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/memory_model.hpp"
#include "util/expect.hpp"

namespace madpipe {
namespace {

Chain random_chain(unsigned seed, int length) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dur(1.0, 20.0);
  std::uniform_real_distribution<double> size(1.0, 100.0);
  std::vector<Layer> layers;
  for (int i = 0; i < length; ++i) {
    Layer layer;
    layer.name = "r" + std::to_string(i);
    layer.forward_time = ms(dur(rng));
    layer.backward_time = ms(dur(rng));
    layer.weight_bytes = size(rng) * MB;
    layer.output_bytes = size(rng) * MB;
    layers.push_back(layer);
  }
  return Chain("random" + std::to_string(seed), size(rng) * MB,
               std::move(layers));
}

std::vector<Stage> even_split(const Chain& chain, int stages) {
  std::vector<Stage> result;
  const int per = (chain.length() + stages - 1) / stages;
  for (int first = 1; first <= chain.length(); first += per) {
    result.push_back({first, std::min(chain.length(), first + per - 1)});
  }
  return result;
}

TEST(BuildGroups, SingleGroupWhenPeriodCoversAll) {
  std::vector<PseudoStage> pseudo(3);
  for (auto& ps : pseudo) {
    ps.forward_duration = ms(1);
    ps.backward_duration = ms(1);
  }
  const auto groups = build_groups(pseudo, ms(6));
  EXPECT_EQ(groups, (std::vector<int>{1, 1, 1}));
}

TEST(BuildGroups, GreedyFromTheEnd) {
  std::vector<PseudoStage> pseudo(4);
  for (auto& ps : pseudo) {
    ps.forward_duration = ms(1);
    ps.backward_duration = ms(1);
  }
  // T = 2ms: each group holds exactly one 2ms pseudo-stage.
  EXPECT_EQ(build_groups(pseudo, ms(2)), (std::vector<int>{4, 3, 2, 1}));
  // T = 4ms: pairs.
  EXPECT_EQ(build_groups(pseudo, ms(4)), (std::vector<int>{2, 2, 1, 1}));
}

TEST(BuildGroups, ExactFitStaysInGroup) {
  std::vector<PseudoStage> pseudo(3);
  pseudo[0].forward_duration = ms(2);
  pseudo[1].forward_duration = ms(3);
  pseudo[2].forward_duration = ms(5);
  // T = 8: suffix {3,5} sums exactly to 8 → one group; the 2 opens group 2.
  EXPECT_EQ(build_groups(pseudo, ms(8)), (std::vector<int>{2, 1, 1}));
}

TEST(BuildGroups, GroupNumbersNonIncreasingInPeriod) {
  std::vector<PseudoStage> pseudo(6);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dur(0.5, 5.0);
  for (auto& ps : pseudo) {
    ps.forward_duration = ms(dur(rng));
    ps.backward_duration = ms(dur(rng));
  }
  Seconds total = 0.0;
  for (const auto& ps : pseudo) total += ps.total();
  std::vector<int> previous;
  for (Seconds period = total; period >= total / 8; period *= 0.9) {
    const auto groups = build_groups(pseudo, period);
    if (!previous.empty()) {
      for (std::size_t i = 0; i < groups.size(); ++i) {
        EXPECT_GE(groups[i], previous[i]) << "period " << period;
      }
    }
    previous = groups;
  }
}

TEST(OneFOneB, PatternValidAtGenerousPeriod) {
  const Chain c = random_chain(1, 8);
  const Platform p{4, 100 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 4), 4);
  const auto schedule = build_one_f_one_b(a, c, p, c.total_compute());
  const auto check = validate_pattern(schedule.pattern, a, c, p);
  EXPECT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST(OneFOneB, RejectsPeriodBelowStageLoad) {
  const Chain c = random_chain(2, 8);
  const Platform p{4, 100 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 4), 4);
  EXPECT_THROW(build_one_f_one_b(a, c, p, ms(0.1)), ContractViolation);
}

TEST(OneFOneB, ValidatorInflightMatchesGroupNumbers) {
  const Chain c = random_chain(3, 10);
  const Platform p{5, 1000 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 5), 5);
  const Seconds period = 0.45 * c.total_compute();
  const auto pseudo = comm_transform(a, c, p);
  Seconds max_load = 0.0;
  for (const auto& ps : pseudo) max_load = std::max(max_load, ps.total());
  if (period < max_load) GTEST_SKIP() << "period below load for this seed";

  const auto schedule = build_one_f_one_b(a, c, p, period);
  const auto check = validate_pattern(schedule.pattern, a, c, p);
  ASSERT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
  for (std::size_t q = 0; q < pseudo.size(); ++q) {
    if (pseudo[q].kind != PseudoStage::Kind::Compute) continue;
    EXPECT_EQ(check.stage_active_batches[pseudo[q].stage],
              schedule.group_of_pseudo_stage[q])
        << "stage " << pseudo[q].stage;
  }
}

TEST(OneFOneB, AnalyticMemoryMatchesValidator) {
  const Chain c = random_chain(4, 9);
  const Platform p{3, 1000 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 3), 3);
  const Seconds period = 0.6 * c.total_compute();
  const auto schedule = build_one_f_one_b(a, c, p, period);
  const auto check = validate_pattern(schedule.pattern, a, c, p);
  ASSERT_TRUE(check.valid);
  const auto pseudo = comm_transform(a, c, p);
  for (std::size_t q = 0; q < pseudo.size(); ++q) {
    if (pseudo[q].kind != PseudoStage::Kind::Compute) continue;
    const Stage& st = a.partitioning().stage(pseudo[q].stage);
    const Bytes analytic = stage_memory(
        c, st.first, st.last, schedule.group_of_pseudo_stage[q]);
    const int proc = a.processor_of(pseudo[q].stage);
    EXPECT_NEAR(check.processor_memory_peak[proc], analytic, 1.0)
        << "stage " << pseudo[q].stage;
  }
}

TEST(PlanOneFOneB, UnlimitedMemoryReachesLoadBound) {
  const Chain c = random_chain(5, 8);
  const Platform p{4, 1e6 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 4), 4);
  const auto plan = plan_one_f_one_b(a, c, p);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->period(), a.period_lower_bound(c, p),
              1e-9 * plan->period());
}

TEST(PlanOneFOneB, PeriodNonIncreasingInMemory) {
  const Chain c = random_chain(6, 10);
  const Allocation a = make_contiguous_allocation(c, even_split(c, 5), 5);
  Seconds previous = -1.0;
  for (double mem_gb = 0.7; mem_gb <= 12.0; mem_gb *= 1.6) {
    const Platform p{5, mem_gb * GB, 12 * GB};
    const auto plan = plan_one_f_one_b(a, c, p);
    if (!plan) continue;
    const auto check = validate_pattern(plan->pattern, a, c, p);
    EXPECT_TRUE(check.valid);
    if (previous >= 0.0) {
      EXPECT_LE(plan->period(), previous * (1.0 + 1e-9)) << mem_gb;
    }
    previous = plan->period();
  }
  EXPECT_GE(previous, 0.0) << "no memory size was feasible";
}

TEST(PlanOneFOneB, InfeasibleWhenWeightsAloneDoNotFit) {
  const Chain c = random_chain(7, 6);
  const Platform p{3, 1 * MB, 12 * GB};  // less than the weights
  const Allocation a = make_contiguous_allocation(c, even_split(c, 3), 3);
  EXPECT_FALSE(plan_one_f_one_b(a, c, p).has_value());
}

TEST(PlanOneFOneB, MemoryFeasibleAgreesWithPattern) {
  // memory_feasible's analytic answer must agree with exact validation of
  // the built pattern over a sweep of candidate periods.
  const Chain c = random_chain(8, 8);
  const Platform p{4, 2.5 * GB, 12 * GB};
  const Allocation a = make_contiguous_allocation(c, even_split(c, 4), 4);
  const auto pseudo = comm_transform(a, c, p);
  Seconds max_load = 0.0;
  Seconds total = 0.0;
  for (const auto& ps : pseudo) {
    max_load = std::max(max_load, ps.total());
    total += ps.total();
  }
  for (double f = 1.0; f <= 2.0; f += 0.13) {
    const Seconds period = max_load * f;
    if (period > total) break;
    const bool analytic = memory_feasible(a, c, p, period);
    const auto schedule = build_one_f_one_b(a, c, p, period);
    ValidationOptions options;
    const auto check = validate_pattern(schedule.pattern, a, c, p, options);
    EXPECT_EQ(analytic, check.valid) << "period factor " << f;
  }
}

class OneFOneBRandomized : public ::testing::TestWithParam<unsigned> {};

TEST_P(OneFOneBRandomized, PlansAreAlwaysValid) {
  const Chain c = random_chain(GetParam(), 4 + GetParam() % 9);
  const int procs = 2 + GetParam() % 4;
  if (c.length() < procs) GTEST_SKIP();
  const Platform p{procs, (1.0 + GetParam() % 7) * GB, 12 * GB};
  const Allocation a =
      make_contiguous_allocation(c, even_split(c, procs), procs);
  const auto plan = plan_one_f_one_b(a, c, p);
  if (!plan) GTEST_SKIP() << "infeasible configuration";
  const auto check = validate_pattern(plan->pattern, a, c, p);
  EXPECT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_GE(plan->period(), a.period_lower_bound(c, p) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneFOneBRandomized,
                         ::testing::Range(10u, 40u));

}  // namespace
}  // namespace madpipe
