// Bit-identity and determinism tests for the wavefront DP engine
// (DESIGN.md §11): plans, periods and allocations must match the serial
// flat engine and the recursive reference exactly, at every shard count,
// and every wavefront statistic must be invariant in the thread count —
// the shard decomposition, not the pool, defines the results.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/memory_model.hpp"
#include "madpipe/dp.hpp"
#include "models/zoo.hpp"
#include "util/flat_hash.hpp"

namespace madpipe {
namespace {

MadPipeDPOptions wavefront_options(int threads,
                                   DelayCommVariant variant =
                                       DelayCommVariant::BoundaryConsistent) {
  MadPipeDPOptions options;
  options.grid = Discretization::coarse();
  options.engine = DpEngine::ParallelWavefront;
  options.delay_comm_variant = variant;
  options.threads = threads;
  return options;
}

MadPipeDPOptions serial_options(DpEngine engine,
                                DelayCommVariant variant =
                                    DelayCommVariant::BoundaryConsistent) {
  MadPipeDPOptions options;
  options.grid = Discretization::coarse();
  options.engine = engine;
  options.delay_comm_variant = variant;
  return options;
}

void expect_identical(const MadPipeDPResult& got,
                      const MadPipeDPResult& want, const std::string& label) {
  EXPECT_EQ(got.period, want.period) << label;  // bitwise, not approximate
  ASSERT_EQ(got.allocation.has_value(), want.allocation.has_value()) << label;
  if (got.allocation.has_value()) {
    EXPECT_TRUE(*got.allocation == *want.allocation) << label;
    EXPECT_EQ(got.uses_special, want.uses_special) << label;
  }
}

TEST(ParallelDP, MatchesBothSerialEnginesOnZooAtEveryThreadCount) {
  for (const std::string& name : models::list_networks()) {
    const Chain chain = models::paper_network(name);
    for (const int processors : {2, 4, 8}) {
      const Platform platform{processors, 8 * GB, 12 * GB};
      const Seconds target = chain.total_compute() / processors;
      const auto reference = madpipe_dp(
          chain, platform, target,
          serial_options(DpEngine::ReferenceRecursive));
      const auto flat = madpipe_dp(chain, platform, target,
                                   serial_options(DpEngine::FlatIterative));
      for (const int threads : {1, 2, 4, 8}) {
        const std::string label =
            name + " P=" + std::to_string(processors) +
            " threads=" + std::to_string(threads);
        const auto wave =
            madpipe_dp(chain, platform, target, wavefront_options(threads));
        expect_identical(wave, reference, label + " vs reference");
        expect_identical(wave, flat, label + " vs flat");
        // Discovery cannot value-prune, so the slabs hold the full
        // memory-feasible reachable set — exactly the states the reference
        // engine memoizes (it recurses into every feasible candidate).
        EXPECT_EQ(wave.states_visited, reference.states_visited) << label;
      }
    }
  }
}

TEST(ParallelDP, StatsInvariantAcrossThreadCounts) {
  const Chain chain = models::paper_network("resnet50");
  const Platform platform{4, 8 * GB, 12 * GB};
  const Seconds target = chain.total_compute() / 4;
  const auto baseline =
      madpipe_dp(chain, platform, target, wavefront_options(1));
  for (const int threads : {2, 4, 8}) {
    const auto wave =
        madpipe_dp(chain, platform, target, wavefront_options(threads));
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(wave.period, baseline.period) << label;
    EXPECT_EQ(wave.states_visited, baseline.states_visited) << label;
    EXPECT_EQ(wave.stats.dp_states, baseline.stats.dp_states) << label;
    EXPECT_EQ(wave.stats.dp_state_visits, baseline.stats.dp_state_visits)
        << label;
    EXPECT_EQ(wave.stats.memo_probes, baseline.stats.memo_probes) << label;
    EXPECT_EQ(wave.stats.memo_child_lookups,
              baseline.stats.memo_child_lookups)
        << label;
    EXPECT_EQ(wave.stats.memo_hits, baseline.stats.memo_hits) << label;
    EXPECT_EQ(wave.stats.transition_lookups,
              baseline.stats.transition_lookups)
        << label;
  }
}

TEST(ParallelDP, ThreadsOptionRoutesTheDefaultEngine) {
  // `engine = FlatIterative, threads = N > 1` must take the wavefront path
  // and agree with both the explicit wavefront engine and the serial flat
  // engine.
  const Chain chain = models::paper_network("inception_v3");
  const Platform platform{4, 6 * GB, 12 * GB};
  const Seconds target = chain.total_compute() / 4;

  auto routed_options = serial_options(DpEngine::FlatIterative);
  routed_options.threads = 4;
  const auto routed = madpipe_dp(chain, platform, target, routed_options);
  const auto wave = madpipe_dp(chain, platform, target, wavefront_options(4));
  const auto flat = madpipe_dp(chain, platform, target,
                               serial_options(DpEngine::FlatIterative));
  expect_identical(routed, wave, "routed vs explicit wavefront");
  expect_identical(routed, flat, "routed vs serial flat");
  EXPECT_EQ(routed.states_visited, wave.states_visited);
}

TEST(ParallelDP, MatchesSerialOnBothDelayVariants) {
  const Chain chain = models::paper_network("resnet50");
  const Platform platform{4, 6 * GB, 12 * GB};
  for (const DelayCommVariant variant :
       {DelayCommVariant::BoundaryConsistent, DelayCommVariant::PaperLiteral}) {
    for (const double factor : {0.5, 1.0, 2.0}) {
      const Seconds target = factor * chain.total_compute() / 4;
      const auto reference = madpipe_dp(
          chain, platform, target,
          serial_options(DpEngine::ReferenceRecursive, variant));
      const auto wave = madpipe_dp(chain, platform, target,
                                   wavefront_options(4, variant));
      expect_identical(wave, reference,
                       "factor=" + std::to_string(factor));
    }
  }
}

TEST(ParallelDP, ContiguousAblationMatchesSerialEngines) {
  const Chain chain = models::paper_network("densenet121");
  const Platform platform{4, 4 * GB, 12 * GB};
  const Seconds target = chain.total_compute() / 4;
  auto reference_options = serial_options(DpEngine::ReferenceRecursive);
  reference_options.allow_special = false;
  const auto reference = madpipe_dp(chain, platform, target,
                                    reference_options);
  for (const int threads : {1, 2, 8}) {
    auto options = wavefront_options(threads);
    options.allow_special = false;
    expect_identical(madpipe_dp(chain, platform, target, options), reference,
                     "contiguous threads=" + std::to_string(threads));
  }
}

TEST(ParallelDP, StateBudgetFlagAndTruncationAreThreadCountInvariant) {
  const Chain chain = models::paper_network("resnet50");
  const Platform platform{4, 8 * GB, 12 * GB};
  const Seconds target = chain.total_compute() / 4;
  auto options1 = wavefront_options(1);
  options1.max_states = 16;  // far below what this instance needs
  const auto baseline = madpipe_dp(chain, platform, target, options1);
  EXPECT_TRUE(baseline.state_budget_hit);
  EXPECT_EQ(baseline.stats.state_budget_hits, 1);
  EXPECT_LE(baseline.states_visited, options1.max_states + 1);
  for (const int threads : {2, 4, 8}) {
    auto options = wavefront_options(threads);
    options.max_states = 16;
    const auto wave = madpipe_dp(chain, platform, target, options);
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_TRUE(wave.state_budget_hit) << label;
    // The ordered merge applies the truncation, so even the budget cut is
    // bit-identical across thread counts.
    EXPECT_EQ(wave.period, baseline.period) << label;
    EXPECT_EQ(wave.states_visited, baseline.states_visited) << label;
  }
  // An untouched run reports a clean flag.
  const auto clean = madpipe_dp(chain, platform, target, wavefront_options(8));
  EXPECT_FALSE(clean.state_budget_hit);
  EXPECT_EQ(clean.stats.state_budget_hits, 0);
}

TEST(ParallelDP, LlmScaleChainAtSixtyFourGpusStaysBitIdentical) {
  // The packed-state budget extends to L ≥ 2000, P = 64 (transformer
  // presets linearize to 2050 layers). A uniform 2048-layer chain with
  // weights tight against the per-GPU limit keeps the candidate scan short
  // (stage_static_memory_exceeds prunes at ~128 layers/stage) so this runs
  // in seconds, while exercising the full 12-bit layer / 7-bit processor
  // packing.
  const Chain chain =
      make_uniform_chain(2048, ms(2), ms(4), 16 * MB, 4 * MB, MB, "llm");
  const Platform platform{64, 2 * GB, 12 * GB};
  const Seconds target = chain.total_compute() / 64;

  const auto flat = madpipe_dp(chain, platform, target,
                               serial_options(DpEngine::FlatIterative));
  EXPECT_TRUE(flat.allocation.has_value());
  EXPECT_FALSE(flat.state_budget_hit);
  EXPECT_GT(flat.states_visited, 0);

  const auto wave = madpipe_dp(chain, platform, target, wavefront_options(4));
  // The flat engine value-prunes, so only the results — not the visit
  // counts — are comparable across engines.
  expect_identical(wave, flat, "L=2048 P=64 wavefront vs flat");
  EXPECT_FALSE(wave.state_budget_hit);
}

TEST(ParallelDP, SixtyFourGpusWithoutSpecialStageUsesAllSevenProcessorBits) {
  // With the special stage disabled the root state carries p = P itself, so
  // P = 64 needs the seventh bit of the packed processor field (planner
  // phase 1 always runs with allow_special = false). A 6-bit field would
  // alias the root onto (l + 1, p = 0) and the wavefront expansion would
  // read p = 0 back out of the slab key.
  const Chain chain =
      make_uniform_chain(96, ms(2), ms(4), 32 * MB, 8 * MB, MB, "wide");
  const Platform platform{64, 4 * GB, 12 * GB};
  const Seconds target = chain.total_compute() / 64;

  auto reference_options = serial_options(DpEngine::ReferenceRecursive);
  reference_options.allow_special = false;
  const auto reference =
      madpipe_dp(chain, platform, target, reference_options);
  EXPECT_TRUE(reference.allocation.has_value());

  auto flat_options = serial_options(DpEngine::FlatIterative);
  flat_options.allow_special = false;
  expect_identical(madpipe_dp(chain, platform, target, flat_options),
                   reference, "P=64 contiguous flat vs reference");

  auto wave_options = wavefront_options(4);
  wave_options.allow_special = false;
  expect_identical(madpipe_dp(chain, platform, target, wave_options),
                   reference, "P=64 contiguous wavefront vs reference");
}

TEST(ParallelDP, ShardMergeDeterminismProperty) {
  // The determinism rule in isolation: appending per-shard emission buffers
  // in shard order reproduces the serial insertion order for ANY contiguous
  // sharding of the emission sequence, including under a truncation cap.
  std::mt19937_64 rng(20260808u);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 400);
    std::vector<std::uint64_t> emissions(n);
    for (std::uint64_t& key : emissions) {
      key = rng() % 64;  // small key space forces heavy duplication
    }
    const std::size_t cap =
        (round % 3 == 0) ? 1 + static_cast<std::size_t>(rng() % 16)
                         : static_cast<std::size_t>(-1);

    util::IndexedKeySet64 serial;
    bool serial_fit = serial.merge_shard(
        emissions.data(), emissions.data() + emissions.size(), cap);

    for (const std::size_t shards : {2u, 3u, 7u}) {
      util::IndexedKeySet64 merged;
      bool merged_fit = true;
      const std::size_t chunk = (n + shards - 1) / shards;
      for (std::size_t s = 0; s < shards && merged_fit; ++s) {
        const std::size_t lo = std::min(n, s * chunk);
        const std::size_t hi = std::min(n, lo + chunk);
        merged_fit = merged.merge_shard(emissions.data() + lo,
                                        emissions.data() + hi, cap);
      }
      ASSERT_EQ(merged_fit, serial_fit)
          << "round=" << round << " shards=" << shards;
      ASSERT_EQ(merged.keys(), serial.keys())
          << "round=" << round << " shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace madpipe
