#include "core/partition.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace madpipe {
namespace {

Chain chain6() { return make_uniform_chain(6, ms(1), ms(2), MB, 10 * MB, 5 * MB); }

TEST(Partitioning, AcceptsFullCover) {
  const Chain c = chain6();
  const Partitioning p(c, {{1, 2}, {3, 3}, {4, 6}});
  EXPECT_EQ(p.num_stages(), 3);
  EXPECT_EQ(p.stage(1).first, 3);
  EXPECT_EQ(p.boundary_after(0), 2);
}

TEST(Partitioning, RejectsGap) {
  const Chain c = chain6();
  EXPECT_THROW(Partitioning(c, {{1, 2}, {4, 6}}), ContractViolation);
}

TEST(Partitioning, RejectsOverlap) {
  const Chain c = chain6();
  EXPECT_THROW(Partitioning(c, {{1, 3}, {3, 6}}), ContractViolation);
}

TEST(Partitioning, RejectsWrongEnds) {
  const Chain c = chain6();
  EXPECT_THROW(Partitioning(c, {{2, 6}}), ContractViolation);
  EXPECT_THROW(Partitioning(c, {{1, 5}}), ContractViolation);
}

TEST(Partitioning, StageLoads) {
  const Chain c = chain6();
  const Partitioning p(c, {{1, 2}, {3, 6}});
  EXPECT_DOUBLE_EQ(p.stage_load(c, 0), ms(6));
  EXPECT_DOUBLE_EQ(p.stage_forward_load(c, 1), ms(4));
  EXPECT_DOUBLE_EQ(p.stage_backward_load(c, 1), ms(8));
}

TEST(Partitioning, StoredActivations) {
  const Chain c = chain6();
  const Partitioning p(c, {{1, 2}, {3, 6}});
  // Stage 0 stores a_0 + a_1 = 5 + 10 MB.
  EXPECT_DOUBLE_EQ(p.stage_stored_activations(c, 0), 15 * MB);
  EXPECT_DOUBLE_EQ(p.stage_stored_activations(c, 1), 40 * MB);
}

TEST(Allocation, ContiguousDetection) {
  const Chain c = chain6();
  const Allocation contig =
      make_contiguous_allocation(c, {{1, 3}, {4, 6}}, 2);
  EXPECT_TRUE(contig.contiguous());

  Allocation shared(Partitioning(c, {{1, 2}, {3, 4}, {5, 6}}), {0, 1, 0}, 2);
  EXPECT_FALSE(shared.contiguous());
}

TEST(Allocation, StagesOnProcessor) {
  const Chain c = chain6();
  Allocation a(Partitioning(c, {{1, 2}, {3, 4}, {5, 6}}), {1, 0, 1}, 2);
  EXPECT_EQ(a.stages_on(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(a.stages_on(0), (std::vector<int>{1}));
}

TEST(Allocation, BoundaryCut) {
  const Chain c = chain6();
  Allocation a(Partitioning(c, {{1, 2}, {3, 4}, {5, 6}}), {0, 0, 1}, 2);
  EXPECT_FALSE(a.boundary_cut(0));
  EXPECT_TRUE(a.boundary_cut(1));
  EXPECT_FALSE(a.boundary_cut(2));  // last stage: no boundary after
}

TEST(Allocation, ProcessorLoad) {
  const Chain c = chain6();
  Allocation a(Partitioning(c, {{1, 2}, {3, 4}, {5, 6}}), {1, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(a.processor_load(c, 1), ms(12));
  EXPECT_DOUBLE_EQ(a.processor_load(c, 0), ms(6));
}

TEST(Allocation, PeriodLowerBoundComputeDominated) {
  const Chain c = chain6();
  const Platform plat{2, 16 * GB, 100 * GB};  // fast links
  const Allocation a = make_contiguous_allocation(c, {{1, 3}, {4, 6}}, 2);
  EXPECT_DOUBLE_EQ(a.period_lower_bound(c, plat), ms(9));
}

TEST(Allocation, PeriodLowerBoundSharedLinkAddsUp) {
  const Chain c = chain6();
  const Platform plat{2, 16 * GB, 1 * GB};  // 10MB / 1GB/s = 10ms oneway
  // Stages alternate 0,1,0: both cut boundaries use link (0,1).
  Allocation a(Partitioning(c, {{1, 2}, {3, 4}, {5, 6}}), {0, 1, 0}, 2);
  // Each boundary costs 2·10 MB / 1 GB/s = 20 ms; shared link: 40 ms > any
  // processor load (12 ms).
  EXPECT_NEAR(a.period_lower_bound(c, plat), ms(40), 1e-12);
}

TEST(Allocation, StaticMemoryCountsWeightsAndBuffers) {
  const Chain c = chain6();
  const Platform plat{2, 16 * GB, 12 * GB};
  (void)plat;
  const Allocation a = make_contiguous_allocation(c, {{1, 3}, {4, 6}}, 2);
  // Proc 0: 3 layers of 1MB weights ×3 + outgoing buffer 2·a_3.
  EXPECT_DOUBLE_EQ(a.static_memory(c, 0), 9 * MB + 20 * MB);
  // Proc 1: weights ×3 + incoming buffer 2·a_3 (last stage: no outgoing).
  EXPECT_DOUBLE_EQ(a.static_memory(c, 1), 9 * MB + 20 * MB);
}

TEST(Allocation, StaticMemoryNoBufferInsideProcessor) {
  const Chain c = chain6();
  Allocation a(Partitioning(c, {{1, 2}, {3, 4}, {5, 6}}), {0, 0, 1}, 2);
  // Boundary between stages 0 and 1 is internal to proc 0: no buffer.
  EXPECT_DOUBLE_EQ(a.static_memory(c, 0), 12 * MB + 20 * MB);
}

TEST(Allocation, RejectsBadProcessorIndices) {
  const Chain c = chain6();
  EXPECT_THROW(Allocation(Partitioning(c, {{1, 6}}), {2}, 2),
               ContractViolation);
  EXPECT_THROW(Allocation(Partitioning(c, {{1, 6}}), {0, 1}, 2),
               ContractViolation);
}

TEST(Allocation, ContiguousBuilderNeedsEnoughProcessors) {
  const Chain c = chain6();
  EXPECT_THROW(make_contiguous_allocation(c, {{1, 2}, {3, 4}, {5, 6}}, 2),
               ContractViolation);
}

}  // namespace
}  // namespace madpipe
