#include "core/pattern.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace madpipe {
namespace {

// Two equal layers on two processors, negligible communication: the classic
// two-stage pipeline of the paper's Figure 2, built by hand.
struct TwoStageFixture {
  Chain chain = make_uniform_chain(2, ms(10), ms(10), MB, MB, MB);
  // Near-infinite bandwidth: communications become negligible (sub-tolerance)
  // so periods can be packed exactly around compute.
  Platform platform{2, 10 * GB, 1e9 * GB};
  Allocation allocation =
      make_contiguous_allocation(chain, {{1, 1}, {2, 2}}, 2);

  PeriodicPattern pattern(Seconds T = ms(40)) const {
    PeriodicPattern p;
    p.period = T;
    const Seconds comm = platform.boundary_oneway_time(chain, 1);
    const ResourceId gpu0 = ResourceId::processor(0);
    const ResourceId gpu1 = ResourceId::processor(1);
    const ResourceId link = ResourceId::link(0, 1);
    // Virtual times: F0, CF, F1, B1, CB, B0 back to back.
    Seconds z = 0.0;
    p.ops.push_back(PeriodicPattern::make_op(OpKind::Forward, 0, gpu0, z, ms(10), T));
    z += ms(10);
    p.ops.push_back(PeriodicPattern::make_op(OpKind::CommForward, 0, link, z, comm, T));
    z += comm;
    p.ops.push_back(PeriodicPattern::make_op(OpKind::Forward, 1, gpu1, z, ms(10), T));
    z += ms(10);
    p.ops.push_back(PeriodicPattern::make_op(OpKind::Backward, 1, gpu1, z, ms(10), T));
    z += ms(10);
    p.ops.push_back(PeriodicPattern::make_op(OpKind::CommBackward, 0, link, z, comm, T));
    z += comm;
    p.ops.push_back(PeriodicPattern::make_op(OpKind::Backward, 0, gpu0, z, ms(10), T));
    return p;
  }
};

TEST(PatternOp, MakeOpSplitsVirtualTime) {
  const PatternOp op = PeriodicPattern::make_op(
      OpKind::Forward, 0, ResourceId::processor(0), 25.0, 1.0, 10.0);
  EXPECT_EQ(op.shift, 2);
  EXPECT_DOUBLE_EQ(op.start, 5.0);
  EXPECT_DOUBLE_EQ(op.virtual_time(10.0), 25.0);
}

TEST(PatternOp, MakeOpExactMultiple) {
  const PatternOp op = PeriodicPattern::make_op(
      OpKind::Forward, 0, ResourceId::processor(0), 30.0, 1.0, 10.0);
  EXPECT_EQ(op.shift, 3);
  EXPECT_DOUBLE_EQ(op.start, 0.0);
}

TEST(PatternOp, MakeOpRejectsNegativeTime) {
  EXPECT_THROW(PeriodicPattern::make_op(OpKind::Forward, 0,
                                        ResourceId::processor(0), -1.0, 1.0,
                                        10.0),
               ContractViolation);
}

TEST(ResourceIdTest, LinkNormalizesEndpoints) {
  EXPECT_EQ(ResourceId::link(3, 1), ResourceId::link(1, 3));
  EXPECT_THROW(ResourceId::link(2, 2), ContractViolation);
}

TEST(ResourceIdTest, Ordering) {
  EXPECT_LT(ResourceId::processor(0), ResourceId::processor(1));
  EXPECT_LT(ResourceId::processor(5), ResourceId::link(0, 1));
}

TEST(ValidatePattern, AcceptsHandBuiltPipeline) {
  const TwoStageFixture f;
  const auto result = validate_pattern(f.pattern(), f.allocation, f.chain,
                                       f.platform);
  EXPECT_TRUE(result.valid) << (result.errors.empty() ? "" : result.errors[0]);
}

TEST(ValidatePattern, ReportsActiveBatchCounts) {
  const TwoStageFixture f;
  // At T = 40 ms everything fits one period: one in-flight batch per stage.
  const auto result = validate_pattern(f.pattern(ms(40)), f.allocation,
                                       f.chain, f.platform);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.stage_active_batches[0], 1);
  EXPECT_EQ(result.stage_active_batches[1], 1);
}

TEST(ValidatePattern, TighterPeriodRaisesInflight) {
  const TwoStageFixture f;
  // At T = 20 ms the round trip (≈40 ms) spans 2 periods: stage 0 must keep
  // 2 in-flight batches.
  const auto result = validate_pattern(f.pattern(ms(20)), f.allocation,
                                       f.chain, f.platform);
  ASSERT_TRUE(result.valid) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.stage_active_batches[0], 2);
  EXPECT_EQ(result.stage_active_batches[1], 1);
}

TEST(ValidatePattern, RejectsMissingOp) {
  const TwoStageFixture f;
  PeriodicPattern p = f.pattern();
  p.ops.pop_back();
  const auto result = validate_pattern(p, f.allocation, f.chain, f.platform);
  EXPECT_FALSE(result.valid);
}

TEST(ValidatePattern, RejectsDuplicateOp) {
  const TwoStageFixture f;
  PeriodicPattern p = f.pattern();
  p.ops.push_back(p.ops.front());
  const auto result = validate_pattern(p, f.allocation, f.chain, f.platform);
  EXPECT_FALSE(result.valid);
}

TEST(ValidatePattern, RejectsWrongResource) {
  const TwoStageFixture f;
  PeriodicPattern p = f.pattern();
  p.ops[0].resource = ResourceId::processor(1);
  const auto result = validate_pattern(p, f.allocation, f.chain, f.platform);
  EXPECT_FALSE(result.valid);
}

TEST(ValidatePattern, RejectsWrongDuration) {
  const TwoStageFixture f;
  PeriodicPattern p = f.pattern();
  p.ops[0].duration = ms(11);
  const auto result = validate_pattern(p, f.allocation, f.chain, f.platform);
  EXPECT_FALSE(result.valid);
}

TEST(ValidatePattern, RejectsDependencyViolation) {
  const TwoStageFixture f;
  PeriodicPattern p = f.pattern();
  // Pull F of stage 1 before the comm delivering its input.
  for (PatternOp& op : p.ops) {
    if (op.kind == OpKind::Forward && op.stage == 1) {
      op.start = 0.0;
      op.shift = 0;
    }
  }
  const auto result = validate_pattern(p, f.allocation, f.chain, f.platform);
  EXPECT_FALSE(result.valid);
}

TEST(ValidatePattern, RejectsResourceOverlap) {
  const TwoStageFixture f;
  PeriodicPattern p = f.pattern();
  // Slam B of stage 0 onto F of stage 0 (same processor, same window) while
  // keeping its virtual time sane by bumping the shift.
  for (PatternOp& op : p.ops) {
    if (op.kind == OpKind::Backward && op.stage == 0) {
      op.start = ms(5);
      op.shift = 2;
    }
  }
  const auto result = validate_pattern(p, f.allocation, f.chain, f.platform);
  EXPECT_FALSE(result.valid);
}

TEST(ValidatePattern, RejectsOvercommittedResource) {
  const TwoStageFixture f;
  PeriodicPattern p = f.pattern(ms(15));  // 20 ms of work per GPU > 15 ms
  const auto result = validate_pattern(p, f.allocation, f.chain, f.platform);
  EXPECT_FALSE(result.valid);
}

TEST(ValidatePattern, RejectsMemoryOverrun) {
  TwoStageFixture f;
  f.platform.memory_per_processor = 4 * MB;  // weights ≈3MB + act 1MB + buf 2MB
  const auto result = validate_pattern(f.pattern(), f.allocation, f.chain,
                                       f.platform);
  EXPECT_FALSE(result.valid);
  // Diagnostics survive the failure.
  ASSERT_EQ(result.processor_memory_peak.size(), 2u);
  EXPECT_GT(result.processor_memory_peak[0], 4 * MB);
}

TEST(ValidatePattern, MemoryCheckCanBeDisabled) {
  TwoStageFixture f;
  f.platform.memory_per_processor = 4 * MB;
  ValidationOptions options;
  options.check_memory = false;
  const auto result = validate_pattern(f.pattern(), f.allocation, f.chain,
                                       f.platform, options);
  EXPECT_TRUE(result.valid);
}

TEST(ValidatePattern, MemoryPeakMatchesHandComputation) {
  const TwoStageFixture f;
  const auto result = validate_pattern(f.pattern(), f.allocation, f.chain,
                                       f.platform);
  ASSERT_TRUE(result.valid);
  // GPU0: 3·1MB weights + 2·1MB buffer + 1 in-flight · a_0 (1MB) = 6MB.
  EXPECT_DOUBLE_EQ(result.processor_memory_peak[0], 6 * MB);
}

TEST(ValidatePattern, RejectsNegativePeriod) {
  const TwoStageFixture f;
  PeriodicPattern p = f.pattern();
  p.period = 0.0;
  const auto result = validate_pattern(p, f.allocation, f.chain, f.platform);
  EXPECT_FALSE(result.valid);
}

TEST(ValidatePattern, RejectsCommOnUncutBoundary) {
  // Both stages on one processor: the boundary needs no comm ops.
  const Chain chain = make_uniform_chain(2, ms(10), ms(10), MB, MB, MB);
  const Platform platform{2, 10 * GB, 1000 * GB};
  Allocation allocation(Partitioning(chain, {{1, 1}, {2, 2}}), {0, 0}, 2);
  PeriodicPattern p;
  p.period = ms(50);
  const ResourceId gpu0 = ResourceId::processor(0);
  Seconds z = 0.0;
  for (const auto& [kind, stage] :
       std::vector<std::pair<OpKind, int>>{{OpKind::Forward, 0},
                                           {OpKind::Forward, 1},
                                           {OpKind::Backward, 1},
                                           {OpKind::Backward, 0}}) {
    p.ops.push_back(
        PeriodicPattern::make_op(kind, stage, gpu0, z, ms(10), p.period));
    z += ms(10);
  }
  EXPECT_TRUE(validate_pattern(p, allocation, chain, platform).valid);
  p.ops.push_back(PeriodicPattern::make_op(
      OpKind::CommForward, 0, ResourceId::link(0, 1), z, ms(1), p.period));
  EXPECT_FALSE(validate_pattern(p, allocation, chain, platform).valid);
}

}  // namespace
}  // namespace madpipe
