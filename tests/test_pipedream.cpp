#include "pipedream/pipedream.hpp"

#include <gtest/gtest.h>

#include "core/memory_model.hpp"
#include "core/pattern.hpp"

namespace madpipe {
namespace {

TEST(PipeDream, BalancesUniformChain) {
  const Chain c = make_uniform_chain(8, ms(5), ms(10), MB, MB, MB);
  const Platform p{4, 100 * GB, 1e6 * GB};  // free communication
  const auto result = pipedream_partition(c, p);
  ASSERT_TRUE(result.has_value());
  // 8 equal layers on 4 procs: perfect split, period = 2 layers = 30 ms.
  EXPECT_NEAR(result->dp_period, ms(30), 1e-12);
  EXPECT_EQ(result->allocation.partitioning().num_stages(), 4);
}

TEST(PipeDream, DpPeriodEqualsMaxLoad) {
  const Chain c = make_uniform_chain(9, ms(4), ms(8), MB, 2 * MB, MB);
  const Platform p{4, 100 * GB, 12 * GB};
  const auto result = pipedream_partition(c, p);
  ASSERT_TRUE(result.has_value());
  Seconds max_load = result->allocation.period_lower_bound(c, p);
  EXPECT_NEAR(result->dp_period, max_load, 1e-12);
}

TEST(PipeDream, UsesFewerStagesWhenCommDominates) {
  // Gigantic activations: every cut costs far more than the whole compute.
  const Chain c = make_uniform_chain(6, ms(5), ms(5), MB, 10 * GB, MB);
  const Platform p{4, 1000 * GB, 1 * GB};
  const auto result = pipedream_partition(c, p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->allocation.partitioning().num_stages(), 1);
}

TEST(PipeDream, RespectsItsMemoryEstimate) {
  const Chain c = make_uniform_chain(8, ms(5), ms(10), 10 * MB, 100 * MB, MB);
  const Platform p{4, 1.4 * GB, 12 * GB};
  const auto result = pipedream_partition(c, p);
  ASSERT_TRUE(result.has_value());
  const Partitioning& parts = result->allocation.partitioning();
  const int n = parts.num_stages();
  for (int s = 0; s < n; ++s) {
    const Stage& st = parts.stage(s);
    EXPECT_LE(stage_memory(c, st.first, st.last, n - s),
              p.memory_per_processor * (1.0 + 1e-9));
  }
}

TEST(PipeDream, InfeasibleWhenNothingFits) {
  const Chain c = make_uniform_chain(4, ms(5), ms(5), GB, MB, MB);
  const Platform p{2, 1 * GB, 12 * GB};  // 3·4GB of weights never fit
  EXPECT_FALSE(pipedream_partition(c, p).has_value());
  EXPECT_FALSE(plan_pipedream(c, p).has_value());
}

TEST(PipeDream, PlanIsAlwaysValid) {
  const Chain c = make_uniform_chain(10, ms(3), ms(6), 10 * MB, 40 * MB, MB);
  for (const double mem_gb : {0.8, 1.5, 3.0, 8.0}) {
    const Platform p{4, mem_gb * GB, 12 * GB};
    const auto plan = plan_pipedream(c, p);
    if (!plan) continue;
    const auto check = validate_pattern(plan->pattern, plan->allocation, c, p);
    EXPECT_TRUE(check.valid) << mem_gb;
    EXPECT_EQ(plan->planner, "pipedream");
    // The valid schedule can never beat the DP's load bound.
    EXPECT_GE(plan->period(), plan->phase1_period - 1e-12);
  }
}

TEST(PipeDream, TighterMemoryNeverImprovesDpPeriod) {
  const Chain c = make_uniform_chain(10, ms(3), ms(6), 10 * MB, 60 * MB, MB);
  Seconds previous = -1.0;
  for (const double mem_gb : {8.0, 4.0, 2.0, 1.0}) {
    const Platform p{4, mem_gb * GB, 12 * GB};
    const auto result = pipedream_partition(c, p);
    if (!result) break;
    if (previous >= 0.0) EXPECT_GE(result->dp_period, previous - 1e-12);
    previous = result->dp_period;
  }
}

}  // namespace
}  // namespace madpipe
