#include "core/plan.hpp"

#include <gtest/gtest.h>

#include "schedule/one_f_one_b.hpp"
#include "util/expect.hpp"
#include "sim/trace.hpp"

namespace madpipe {
namespace {

Plan sample_plan(const Chain& c, const Platform& p) {
  const Allocation a = make_contiguous_allocation(c, {{1, 2}, {3, 4}}, 2);
  auto plan = plan_one_f_one_b(a, c, p);
  EXPECT_TRUE(plan.has_value());
  return *plan;
}

TEST(Plan, SpeedupAndThroughput) {
  const Chain c = make_uniform_chain(4, ms(5), ms(10), MB, MB, MB);
  const Platform p{2, 10 * GB, 1e6 * GB};
  const Plan plan = sample_plan(c, p);
  EXPECT_NEAR(plan.throughput() * plan.period(), 1.0, 1e-12);
  EXPECT_NEAR(plan.speedup(c), c.total_compute() / plan.period(), 1e-12);
  EXPECT_GT(plan.speedup(c), 1.0);
}

TEST(Plan, JsonDumpContainsStructure) {
  const Chain c = make_uniform_chain(4, ms(5), ms(10), MB, MB, MB);
  const Platform p{2, 10 * GB, 1e6 * GB};
  const Plan plan = sample_plan(c, p);
  const std::string json = plan_to_json(plan, c, p);
  EXPECT_NE(json.find("\"planner\":\"1f1b*\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(json.find("\"ops\":["), std::string::npos);
  EXPECT_NE(json.find("\"period\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Plan, HumanReadableDump) {
  const Chain c = make_uniform_chain(4, ms(5), ms(10), MB, MB, MB);
  const Platform p{2, 10 * GB, 1e6 * GB};
  const Plan plan = sample_plan(c, p);
  const std::string text = plan_to_string(plan, c, p);
  EXPECT_NE(text.find("stage 0"), std::string::npos);
  EXPECT_NE(text.find("gpu1"), std::string::npos);
  EXPECT_NE(text.find("speedup"), std::string::npos);
}

TEST(Gantt, RendersEveryResource) {
  const Chain c = make_uniform_chain(4, ms(5), ms(10), MB, MB, MB);
  const Platform p{2, 10 * GB, 1e6 * GB};
  const Plan plan = sample_plan(c, p);
  const std::string gantt =
      render_gantt(plan.pattern, plan.allocation, c, {80, 1});
  EXPECT_NE(gantt.find("gpu0"), std::string::npos);
  EXPECT_NE(gantt.find("gpu1"), std::string::npos);
  EXPECT_NE(gantt.find("link0-1"), std::string::npos);
  // Forward of stage 0 renders as 'A', backward as 'a'.
  EXPECT_NE(gantt.find('A'), std::string::npos);
  EXPECT_NE(gantt.find('a'), std::string::npos);
}

TEST(Gantt, RejectsSillyGeometry) {
  const Chain c = make_uniform_chain(4, ms(5), ms(10), MB, MB, MB);
  const Platform p{2, 10 * GB, 1e6 * GB};
  const Plan plan = sample_plan(c, p);
  EXPECT_THROW(render_gantt(plan.pattern, plan.allocation, c, {5, 1}),
               ContractViolation);
}

}  // namespace
}  // namespace madpipe
