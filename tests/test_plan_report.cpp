// Tests for the schedule-introspection subsystem (src/report/): the
// property matrix over the paper's evaluation networks × P ∈ {2, 4, 8}
// (report memory peaks must be bit-identical to the verifier's event
// sweep, utilizations in [0, 1], decomposition terms consistent), the
// strict madpipe-explain-v1 JSON schema, the unrolled Chrome-trace
// timeline (one process per GPU and per link), and the serve-facing
// ExplainSummary including its exact power-of-two rescaling.
#include "report/plan_report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "report/timeline_export.hpp"
#include "sim/event_sim.hpp"
#include "util/json.hpp"

namespace madpipe {
namespace {

struct ZooCell {
  std::string network;
  int processors = 0;
};

std::string cell_name(const ::testing::TestParamInfo<ZooCell>& info) {
  return info.param.network + "_P" + std::to_string(info.param.processors);
}

MadPipeOptions quick_options() {
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  return options;
}

Chain zoo_chain(const std::string& network) {
  models::NetworkConfig config;
  config.network = network;
  config.image_size = 500;  // half the paper's size: keeps tests fast
  config.batch = 8;
  config.chain_length = 16;
  return models::build_network(config);
}

class PlanReportZoo : public ::testing::TestWithParam<ZooCell> {};

// The report's per-GPU watermark is the verifier's own number, bit for bit,
// its decomposition sums back to the peak, and every utilization is a
// fraction of the period.
TEST_P(PlanReportZoo, PeakBitMatchesVerifierAndBoundsSimulation) {
  const Chain chain = zoo_chain(GetParam().network);
  const Platform platform{GetParam().processors, 8 * GB, 12 * GB};
  const std::optional<Plan> plan = plan_madpipe(chain, platform, quick_options());
  if (!plan) GTEST_SKIP() << "infeasible";

  const ValidationResult check =
      validate_pattern(plan->pattern, plan->allocation, chain, platform);
  ASSERT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);

  report::PlanReportOptions options;
  options.simulation_batches = 48;
  const report::PlanReport rep =
      report::build_plan_report(*plan, chain, platform, options);

  EXPECT_EQ(rep.gpus, platform.processors);
  ASSERT_EQ(rep.memory.size(), static_cast<std::size_t>(platform.processors));
  ASSERT_EQ(rep.stages.size(), static_cast<std::size_t>(rep.num_stages));

  for (int p = 0; p < platform.processors; ++p) {
    const report::GpuMemoryReport& mem = rep.memory[p];
    // Bitwise: the report reuses the verifier's event sweep and sums the
    // identical static_memory + peak_activation expression.
    EXPECT_EQ(mem.peak_bytes, check.processor_memory_peak[p]) << "gpu" << p;
    EXPECT_EQ(mem.headroom_bytes, mem.limit_bytes - mem.peak_bytes);
    EXPECT_EQ(mem.limit_bytes, platform.memory_per_processor);
    EXPECT_LE(mem.peak_bytes, mem.limit_bytes * (1.0 + 1e-9));
    // The §3 decomposition covers the peak (terms are summed in a
    // different order than static_memory, so compare with a relative
    // tolerance, not bitwise).
    const Bytes sum = mem.weights_bytes + mem.scratch_bytes +
                      mem.comm_buffers_bytes + mem.activations_peak_bytes;
    EXPECT_NEAR(sum, mem.peak_bytes, 1e-9 * std::max(1.0, mem.peak_bytes));
    // The curve never exceeds the watermark and is time-sorted in [0, T).
    ASSERT_FALSE(mem.curve.empty());
    for (std::size_t i = 0; i < mem.curve.size(); ++i) {
      EXPECT_LE(mem.curve[i].bytes, mem.peak_bytes * (1.0 + 1e-12));
      EXPECT_GE(mem.curve[i].time, 0.0);
      EXPECT_LT(mem.curve[i].time, rep.period);
      if (i > 0) {
        EXPECT_GT(mem.curve[i].time, mem.curve[i - 1].time);
      }
    }
    const auto highest =
        std::max_element(mem.curve.begin(), mem.curve.end(),
                         [](const report::MemoryCurvePoint& a,
                            const report::MemoryCurvePoint& b) {
                           return a.bytes < b.bytes;
                         });
    EXPECT_EQ(highest->bytes, mem.peak_bytes);
  }

  double max_utilization = 0.0;
  for (const report::ResourceReport& resource : rep.resources) {
    EXPECT_GE(resource.utilization, 0.0) << resource.resource.to_string();
    EXPECT_LE(resource.utilization, 1.0) << resource.resource.to_string();
    EXPECT_DOUBLE_EQ(resource.bubble_fraction, 1.0 - resource.utilization);
    max_utilization = std::max(max_utilization, resource.utilization);
  }
  EXPECT_DOUBLE_EQ(rep.critical_utilization, max_utilization);
  EXPECT_GE(rep.mean_gpu_utilization, 0.0);
  EXPECT_LE(rep.mean_gpu_utilization, 1.0);

  // The ASAP execution never holds more memory than the pattern's steady
  // state certifies (it can only free earlier), and never runs slower.
  ASSERT_TRUE(rep.simulated);
  const SimulationResult sim = simulate_pattern(plan->pattern, plan->allocation,
                                                chain, platform, {48});
  for (int p = 0; p < platform.processors; ++p) {
    EXPECT_LE(sim.processor_memory_peak[p],
              rep.memory[p].peak_bytes * (1.0 + 1e-9))
        << "gpu" << p;
  }
  EXPECT_LE(rep.simulated_period, rep.period * (1.0 + 1e-6));
  EXPECT_LE(rep.period_delta_fraction, 1e-6);

  // The summary digests the same report: max peak, min headroom.
  const report::ExplainSummary summary = report::summarize(rep);
  Bytes max_peak = 0.0;
  Bytes min_headroom = rep.memory[0].headroom_bytes;
  for (const report::GpuMemoryReport& mem : rep.memory) {
    max_peak = std::max(max_peak, mem.peak_bytes);
    min_headroom = std::min(min_headroom, mem.headroom_bytes);
  }
  EXPECT_EQ(summary.memory_peak_bytes, max_peak);
  EXPECT_EQ(summary.memory_headroom_bytes, min_headroom);
  EXPECT_EQ(summary.period, rep.period);
  EXPECT_EQ(summary.critical_resource, rep.critical_resource.to_string());
  EXPECT_EQ(summary.binding_term,
            rep.memory[summary.binding_gpu].binding_term);
}

std::vector<ZooCell> zoo_matrix() {
  std::vector<ZooCell> cells;
  for (const std::string& network : models::list_networks()) {
    for (const int processors : {2, 4, 8}) {
      cells.push_back({network, processors});
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(Zoo, PlanReportZoo, ::testing::ValuesIn(zoo_matrix()),
                         cell_name);

struct TinyCase {
  Chain chain;
  Platform platform;
  Plan plan;
};

TinyCase tiny_case() {
  Chain chain = make_uniform_chain(4, ms(2), ms(4), MB, 8 * MB, MB);
  const Platform platform{2, 2 * GB, 12 * GB};
  std::optional<Plan> plan = plan_madpipe(chain, platform, quick_options());
  // .value() throws (failing the test) if the tiny case ever went infeasible.
  return {std::move(chain), platform, std::move(plan.value())};
}

TEST(PlanReportJson, EmitsStrictExplainV1Schema) {
  const TinyCase t = tiny_case();
  const Chain& chain = t.chain;
  const Platform& platform = t.platform;
  const Plan& plan = t.plan;
  const report::PlanReport rep = report::build_plan_report(plan, chain, platform);
  const json::ParseResult parsed = json::parse(report::plan_report_to_json(rep));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const json::Value& root = parsed.value;
  EXPECT_EQ(root.string_or("schema", ""), report::kExplainSchema);
  EXPECT_GT(root.number_or("period_seconds", 0.0), 0.0);
  EXPECT_EQ(root.number_or("gpus", 0.0), 2.0);
  const json::Value* stages = root.find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_TRUE(stages->is_array());
  for (const json::Value& stage : stages->items()) {
    EXPECT_NE(stage.find("processor"), nullptr);
    EXPECT_NE(stage.find("forward_seconds"), nullptr);
    EXPECT_NE(stage.find("backward_seconds"), nullptr);
    EXPECT_NE(stage.find("weight_bytes"), nullptr);
    EXPECT_NE(stage.find("max_in_flight"), nullptr);
  }
  const json::Value* resources = root.find("resources");
  ASSERT_NE(resources, nullptr);
  ASSERT_GE(resources->items().size(), 2u);  // 2 GPUs + any links
  const json::Value* memory = root.find("memory");
  ASSERT_NE(memory, nullptr);
  ASSERT_EQ(memory->items().size(), 2u);
  for (const json::Value& gpu : memory->items()) {
    const double limit = gpu.number_or("limit_bytes", -1.0);
    const double peak = gpu.number_or("peak_bytes", -1.0);
    EXPECT_EQ(gpu.number_or("headroom_bytes", -1.0), limit - peak);
    EXPECT_NE(gpu.find("binding_term"), nullptr);
    const json::Value* curve = gpu.find("curve");
    ASSERT_NE(curve, nullptr);
    EXPECT_FALSE(curve->items().empty());
  }
  EXPECT_NE(root.find("critical_resource"), nullptr);
  EXPECT_NE(root.find("mean_gpu_utilization"), nullptr);
}

// The human rendering mentions every section a user debugs with.
TEST(PlanReportJson, HumanRenderingHasAllSections) {
  const TinyCase t = tiny_case();
  const Chain& chain = t.chain;
  const Platform& platform = t.platform;
  const Plan& plan = t.plan;
  report::PlanReportOptions options;
  options.run_simulation = false;
  const std::string text = report::plan_report_to_string(
      report::build_plan_report(plan, chain, platform, options));
  EXPECT_NE(text.find("stage"), std::string::npos);
  EXPECT_NE(text.find("critical resource"), std::string::npos);
  EXPECT_NE(text.find("gpu0"), std::string::npos);
  EXPECT_NE(text.find("headroom"), std::string::npos);
}

TEST(PlanReportTimeline, OneProcessPerGpuAndPerLink) {
  const TinyCase t = tiny_case();
  const Chain& chain = t.chain;
  const Platform& platform = t.platform;
  const Plan& plan = t.plan;
  constexpr int kPeriods = 3;
  const std::string text = report::timeline_to_chrome_json(
      plan.pattern, plan.allocation, chain, {kPeriods});
  const json::ParseResult parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const json::Value* events = parsed.value.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Expected processes: every GPU of the platform plus every link the
  // pattern communicates over.
  std::set<std::string> expected;
  for (int p = 0; p < platform.processors; ++p) {
    expected.insert(ResourceId::processor(p).to_string());
  }
  for (const PatternOp& op : plan.pattern.ops) {
    if (op.resource.kind == ResourceId::Kind::Link) {
      expected.insert(op.resource.to_string());
    }
  }

  std::set<std::string> named;
  std::set<double> named_pids;
  std::size_t slices = 0;
  for (const json::Value& event : events->items()) {
    const std::string ph = event.string_or("ph", "");
    if (ph == "M") {
      ASSERT_EQ(event.string_or("name", ""), "process_name");
      const json::Value* margs = event.find("args");
      ASSERT_NE(margs, nullptr);
      named.insert(margs->string_or("name", ""));
      named_pids.insert(event.number_or("pid", -1.0));
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++slices;
    EXPECT_GE(event.number_or("ts", -1.0), 0.0);
    EXPECT_GT(event.number_or("dur", 0.0), 0.0);
    const json::Value* args = event.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_GE(args->number_or("batch", -1.0), 0.0);
    EXPECT_GE(args->number_or("stage", -1.0), 0.0);
    // Every slice lands in a declared process and carries a palette color.
    EXPECT_EQ(named_pids.count(event.number_or("pid", -1.0)), 1u);
    EXPECT_FALSE(event.string_or("cname", "").empty());
  }
  EXPECT_EQ(named, expected);
  EXPECT_EQ(named_pids.size(), expected.size());
  // Unrolling emits at most ops × periods slices; ops whose shift exceeds
  // the period index are skipped (their batch would be < 0), so warm-up
  // periods emit fewer.
  EXPECT_GT(slices, 0u);
  EXPECT_LE(slices, plan.pattern.ops.size() * kPeriods);
}

TEST(PlanReportSummary, ScaleSummaryIsExactForPowerOfTwoUnits) {
  const TinyCase t = tiny_case();
  const Chain& chain = t.chain;
  const Platform& platform = t.platform;
  const Plan& plan = t.plan;
  const report::ExplainSummary base =
      report::build_explain_summary(plan, chain, platform);
  const report::ExplainSummary scaled = report::scale_summary(base, 4.0, 0.5);
  EXPECT_EQ(scaled.period, base.period * 4.0);
  EXPECT_EQ(scaled.memory_peak_bytes, base.memory_peak_bytes * 0.5);
  EXPECT_EQ(scaled.memory_headroom_bytes, base.memory_headroom_bytes * 0.5);
  // Ratios and labels are unit-free.
  EXPECT_EQ(scaled.critical_utilization, base.critical_utilization);
  EXPECT_EQ(scaled.bubble_fraction, base.bubble_fraction);
  EXPECT_EQ(scaled.mean_gpu_utilization, base.mean_gpu_utilization);
  EXPECT_EQ(scaled.critical_resource, base.critical_resource);
  EXPECT_EQ(scaled.binding_gpu, base.binding_gpu);
  EXPECT_EQ(scaled.binding_term, base.binding_term);
}

TEST(PlanReportSummary, BuildExplainSummaryMatchesFullReport) {
  const TinyCase t = tiny_case();
  const Chain& chain = t.chain;
  const Platform& platform = t.platform;
  const Plan& plan = t.plan;
  report::PlanReportOptions options;
  options.run_simulation = false;
  const report::ExplainSummary direct =
      report::build_explain_summary(plan, chain, platform);
  const report::ExplainSummary via_report =
      report::summarize(report::build_plan_report(plan, chain, platform, options));
  EXPECT_EQ(direct.period, via_report.period);
  EXPECT_EQ(direct.memory_peak_bytes, via_report.memory_peak_bytes);
  EXPECT_EQ(direct.memory_headroom_bytes, via_report.memory_headroom_bytes);
  EXPECT_EQ(direct.critical_resource, via_report.critical_resource);
  EXPECT_EQ(direct.critical_utilization, via_report.critical_utilization);
}

}  // namespace
}  // namespace madpipe
