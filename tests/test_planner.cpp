#include "madpipe/planner.hpp"

#include <gtest/gtest.h>

#include "pipedream/pipedream.hpp"
#include "util/expect.hpp"

namespace madpipe {
namespace {

MadPipeOptions quick_options() {
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  return options;
}

TEST(Planner, ProducesValidPlans) {
  const Chain c = make_uniform_chain(10, ms(3), ms(6), 5 * MB, 60 * MB, MB);
  for (const double mem_gb : {1.2, 2.5, 6.0}) {
    const Platform p{4, mem_gb * GB, 12 * GB};
    const auto plan = plan_madpipe(c, p, quick_options());
    if (!plan) continue;
    const auto check = validate_pattern(plan->pattern, plan->allocation, c, p);
    EXPECT_TRUE(check.valid)
        << mem_gb << ": " << (check.errors.empty() ? "" : check.errors[0]);
    EXPECT_EQ(plan->planner, "madpipe");
    EXPECT_GT(plan->phase1_period, 0.0);
  }
}

TEST(Planner, NearOptimalWithAmpleMemory) {
  const Chain c = make_uniform_chain(8, ms(5), ms(10), MB, MB, MB);
  const Platform p{4, 1e5 * GB, 1e6 * GB};
  const auto plan = plan_madpipe(c, p, quick_options());
  ASSERT_TRUE(plan.has_value());
  // 8 equal layers, 4 procs, free comm: 2 layers/proc = 30 ms.
  EXPECT_NEAR(plan->period(), ms(30), ms(1.0));
}

TEST(Planner, InfeasibleWhenMemoryHopeless) {
  const Chain c = make_uniform_chain(4, ms(2), ms(4), GB, MB, MB);
  const Platform p{2, GB, 12 * GB};
  EXPECT_FALSE(plan_madpipe(c, p, quick_options()).has_value());
}

TEST(Planner, NoSpecialVariantIsContiguous) {
  const Chain c = make_uniform_chain(10, ms(3), ms(6), 5 * MB, 60 * MB, MB);
  const Platform p{4, 2 * GB, 12 * GB};
  MadPipeOptions options = quick_options();
  options.disable_special_processor = true;
  const auto plan = plan_madpipe(c, p, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->allocation.contiguous());
  EXPECT_EQ(plan->planner, "madpipe-contig");
}

TEST(Planner, ScheduleBestOfNeverHurts) {
  const Chain c = make_uniform_chain(12, ms(2), ms(4), 8 * MB, 90 * MB, MB);
  const Platform p{4, 1.8 * GB, 12 * GB};
  const auto baseline = plan_madpipe(c, p, quick_options());
  MadPipeOptions extended = quick_options();
  extended.schedule_best_of = 4;
  const auto extra = plan_madpipe(c, p, extended);
  if (baseline && extra) {
    EXPECT_LE(extra->period(), baseline->period() * (1.0 + 1e-9));
  } else {
    EXPECT_EQ(baseline.has_value(), extra.has_value());
  }
}

TEST(Planner, RejectsBadBestOf) {
  const Chain c = make_uniform_chain(4, ms(1), ms(1), MB, MB, MB);
  const Platform p{2, GB, 12 * GB};
  MadPipeOptions options = quick_options();
  options.schedule_best_of = 0;
  EXPECT_THROW(plan_madpipe(c, p, options), ContractViolation);
}

TEST(Planner, MemoryAwareContiguousBeatsOrMatchesPipeDreamWhenTight) {
  // The memory-aware part of MadPipe: with the exact 1F1B* memory model the
  // contiguous variant can never end up *worse* than PipeDream's valid
  // schedule on this family of instances.
  const Chain c = make_uniform_chain(12, ms(2), ms(4), 10 * MB, 120 * MB, MB);
  for (const double mem_gb : {1.5, 2.0, 3.0, 5.0}) {
    const Platform p{4, mem_gb * GB, 12 * GB};
    const auto pd = plan_pipedream(c, p);
    MadPipeOptions options = quick_options();
    options.disable_special_processor = true;
    options.phase1.dp.grid = Discretization::paper();
    const auto mc = plan_madpipe(c, p, options);
    if (!pd || !mc) continue;
    EXPECT_LE(mc->period(), pd->period() * 1.02) << mem_gb;
  }
}

}  // namespace
}  // namespace madpipe
