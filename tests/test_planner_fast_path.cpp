// Golden-equivalence and determinism tests for the planner fast path: the
// flat-memo iterative DP engine must reproduce the reference recursive
// engine bit for bit (periods AND allocations), and the speculative
// bisections must be invariant in speculation width and worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/memory_model.hpp"
#include "madpipe/dp.hpp"
#include "madpipe/planner.hpp"
#include "madpipe/search.hpp"
#include "models/zoo.hpp"

namespace madpipe {
namespace {

MadPipeDPOptions engine_options(DpEngine engine,
                                DelayCommVariant variant =
                                    DelayCommVariant::BoundaryConsistent) {
  MadPipeDPOptions options;
  options.grid = Discretization::coarse();
  options.engine = engine;
  options.delay_comm_variant = variant;
  return options;
}

void expect_identical(const MadPipeDPResult& flat,
                      const MadPipeDPResult& reference,
                      const std::string& label) {
  // Bitwise-equal periods: the fast path reorders no floating-point
  // arithmetic, it only skips provably-losing candidates.
  EXPECT_EQ(flat.period, reference.period) << label;
  ASSERT_EQ(flat.allocation.has_value(), reference.allocation.has_value())
      << label;
  if (flat.allocation.has_value()) {
    EXPECT_TRUE(*flat.allocation == *reference.allocation) << label;
    EXPECT_EQ(flat.uses_special, reference.uses_special) << label;
  }
}

TEST(PlannerFastPath, MatchesReferenceOnZooNetworks) {
  for (const std::string& name : models::list_networks()) {
    const Chain chain = models::paper_network(name);
    for (const int processors : {2, 4, 8}) {
      for (const double memory_gb : {4.0, 8.0}) {
        const Platform platform{processors, memory_gb * GB, 12 * GB};
        const Seconds target = chain.total_compute() / processors;
        const auto flat = madpipe_dp(
            chain, platform, target, engine_options(DpEngine::FlatIterative));
        const auto reference =
            madpipe_dp(chain, platform, target,
                       engine_options(DpEngine::ReferenceRecursive));
        expect_identical(flat, reference,
                         name + " P=" + std::to_string(processors) +
                             " M=" + std::to_string(memory_gb));
      }
    }
  }
}

TEST(PlannerFastPath, MatchesReferenceOnBothDelayVariants) {
  const Chain chain = models::paper_network("resnet50");
  const Platform platform{4, 6 * GB, 12 * GB};
  for (const DelayCommVariant variant :
       {DelayCommVariant::BoundaryConsistent, DelayCommVariant::PaperLiteral}) {
    for (const double factor : {0.5, 1.0, 2.0}) {
      const Seconds target = factor * chain.total_compute() / 4;
      const auto flat =
          madpipe_dp(chain, platform, target,
                     engine_options(DpEngine::FlatIterative, variant));
      const auto reference =
          madpipe_dp(chain, platform, target,
                     engine_options(DpEngine::ReferenceRecursive, variant));
      expect_identical(flat, reference, "factor=" + std::to_string(factor));
    }
  }
}

TEST(PlannerFastPath, MatchesReferenceOnUniformChains) {
  // Uniform chains exercise heavy tie-breaking: every candidate stage has
  // the same shape, so the strict-improvement rule decides everything.
  const Chain chain = make_uniform_chain(16, ms(2), ms(4), 10 * MB,
                                         120 * MB, 2 * MB);
  for (const int processors : {2, 3, 4}) {
    const Platform platform{processors, 2 * GB, 12 * GB};
    for (const double factor : {0.6, 1.0, 1.7}) {
      const Seconds target = factor * chain.total_compute() / processors;
      const auto flat = madpipe_dp(chain, platform, target,
                                   engine_options(DpEngine::FlatIterative));
      const auto reference = madpipe_dp(
          chain, platform, target, engine_options(DpEngine::ReferenceRecursive));
      expect_identical(flat, reference,
                       "P=" + std::to_string(processors) +
                           " factor=" + std::to_string(factor));
    }
  }
}

TEST(PlannerFastPath, ContiguousAblationMatchesReference) {
  const Chain chain = models::paper_network("densenet121");
  const Platform platform{4, 4 * GB, 12 * GB};
  auto flat_options = engine_options(DpEngine::FlatIterative);
  auto reference_options = engine_options(DpEngine::ReferenceRecursive);
  flat_options.allow_special = false;
  reference_options.allow_special = false;
  const Seconds target = chain.total_compute() / 4;
  expect_identical(madpipe_dp(chain, platform, target, flat_options),
                   madpipe_dp(chain, platform, target, reference_options),
                   "contiguous");
}

TEST(PlannerFastPath, PlanInvariantInSpeculationAndWorkers) {
  const Chain chain = models::paper_network("resnet50");
  const Platform platform{4, 8 * GB, 12 * GB};

  auto plan_with = [&](int speculation, std::size_t workers) {
    MadPipeOptions options;
    options.phase1.dp.grid = Discretization::coarse();
    options.phase1.speculation = speculation;
    options.phase1.workers = workers;
    options.phase2.speculation = speculation;
    options.phase2.workers = workers;
    options.workers = workers;
    return plan_madpipe(chain, platform, options);
  };

  const auto baseline = plan_with(1, 1);
  ASSERT_TRUE(baseline.has_value());
  for (const int speculation : {2, 4}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      const auto plan = plan_with(speculation, workers);
      ASSERT_TRUE(plan.has_value())
          << "W=" << speculation << " workers=" << workers;
      EXPECT_EQ(plan->period(), baseline->period())
          << "W=" << speculation << " workers=" << workers;
      EXPECT_EQ(plan->phase1_period, baseline->phase1_period);
      EXPECT_TRUE(plan->allocation == baseline->allocation);
    }
  }
}

TEST(PlannerFastPath, Phase1DeterministicAcrossWorkerCounts) {
  const Chain chain = models::paper_network("inception_v3");
  const Platform platform{4, 6 * GB, 12 * GB};

  auto phase1_with = [&](int speculation, std::size_t workers) {
    Phase1Options options;
    options.dp.grid = Discretization::coarse();
    options.speculation = speculation;
    options.workers = workers;
    return madpipe_phase1(chain, platform, options);
  };

  const Phase1Result sequential = phase1_with(1, 1);
  const Phase1Result speculated = phase1_with(4, 4);
  EXPECT_EQ(speculated.period, sequential.period);
  ASSERT_EQ(speculated.feasible(), sequential.feasible());
  if (sequential.feasible()) {
    EXPECT_TRUE(*speculated.allocation == *sequential.allocation);
  }
  // The consumed probe sequence — and hence the trace — must be identical.
  ASSERT_EQ(speculated.trace.size(), sequential.trace.size());
  for (std::size_t i = 0; i < sequential.trace.size(); ++i) {
    EXPECT_EQ(speculated.trace[i].target, sequential.trace[i].target) << i;
    EXPECT_EQ(speculated.trace[i].achieved, sequential.trace[i].achieved) << i;
  }
  EXPECT_EQ(speculated.stats.phase1_probes, sequential.stats.phase1_probes);
}

TEST(PlannerFastPath, StateBudgetSetsFlagOnBothEngines) {
  const Chain chain = models::paper_network("resnet50");
  const Platform platform{4, 8 * GB, 12 * GB};
  for (const DpEngine engine :
       {DpEngine::FlatIterative, DpEngine::ReferenceRecursive}) {
    auto options = engine_options(engine);
    options.max_states = 16;  // far below what this instance needs
    const auto result =
        madpipe_dp(chain, platform, chain.total_compute() / 4, options);
    EXPECT_TRUE(result.state_budget_hit);
    EXPECT_EQ(result.stats.state_budget_hits, 1);
    EXPECT_LE(result.states_visited, options.max_states + 1);
  }
  // And an untouched run reports a clean flag.
  const auto clean =
      madpipe_dp(chain, platform, chain.total_compute() / 4,
                 engine_options(DpEngine::FlatIterative));
  EXPECT_FALSE(clean.state_budget_hit);
  EXPECT_EQ(clean.stats.state_budget_hits, 0);
}

TEST(PlannerFastPath, MemoHashedAtMostTwicePerVisit) {
  // Regression guard for the double-lookup fix: the flat engine touches the
  // memo exactly twice per visited state (placeholder insert + final
  // update); child lookups are tracked separately.
  for (const std::string& name : {std::string("resnet50"),
                                  std::string("densenet121")}) {
    const Chain chain = models::paper_network(name);
    const Platform platform{4, 8 * GB, 12 * GB};
    const auto result =
        madpipe_dp(chain, platform, chain.total_compute() / 4,
                   engine_options(DpEngine::FlatIterative));
    EXPECT_GT(result.stats.dp_state_visits, 0) << name;
    EXPECT_LE(result.stats.memo_probes, 2 * result.stats.dp_state_visits)
        << name;
    // The transition cache must actually be reused (reconstruct alone
    // guarantees repeats of the winning path's triples).
    EXPECT_GT(result.stats.transition_hits, 0) << name;
  }
}

TEST(PlannerFastPath, StatsAggregateIntoPlan) {
  const Chain chain = models::paper_network("resnet50");
  const Platform platform{4, 8 * GB, 12 * GB};
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  const auto plan = plan_madpipe(chain, platform, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(plan->stats.dp_probes, 0);
  EXPECT_GT(plan->stats.dp_states, 0);
  EXPECT_EQ(plan->stats.phase1_probes,
            static_cast<long long>(plan->stats.dp_probes) -
                plan->stats.speculative_probes +
                plan->stats.speculative_hits);
  EXPECT_GT(plan->stats.phase1_wall_seconds, 0.0);
}

}  // namespace
}  // namespace madpipe
