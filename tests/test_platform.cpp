#include "core/platform.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace madpipe {
namespace {

TEST(Platform, TransferTime) {
  const Platform p{4, 8 * GB, 12 * GB};
  EXPECT_DOUBLE_EQ(p.transfer_time(6 * GB), 0.5);
  EXPECT_DOUBLE_EQ(p.transfer_time(0.0), 0.0);
}

TEST(Platform, TransferRejectsNegative) {
  const Platform p{4, 8 * GB, 12 * GB};
  EXPECT_THROW(p.transfer_time(-1.0), ContractViolation);
}

TEST(Platform, BoundaryCommTimeIsRoundTrip) {
  const Chain c = make_uniform_chain(3, ms(1), ms(1), MB, 6 * GB, MB);
  const Platform p{2, 8 * GB, 12 * GB};
  // 2·a_1/β = 2·6GB / 12GB/s = 1 s.
  EXPECT_DOUBLE_EQ(p.boundary_comm_time(c, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.boundary_oneway_time(c, 1), 0.5);
}

TEST(Platform, ChainEndsHaveNoComm) {
  const Chain c = make_uniform_chain(3, ms(1), ms(1), MB, 6 * GB, MB);
  const Platform p{2, 8 * GB, 12 * GB};
  EXPECT_DOUBLE_EQ(p.boundary_comm_time(c, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.boundary_comm_time(c, 3), 0.0);
}

TEST(Platform, BoundaryIndexValidated) {
  const Chain c = make_uniform_chain(3, ms(1), ms(1), MB, MB, MB);
  const Platform p{2, 8 * GB, 12 * GB};
  EXPECT_THROW(p.boundary_comm_time(c, -1), ContractViolation);
  EXPECT_THROW(p.boundary_comm_time(c, 4), ContractViolation);
}

TEST(Platform, ValidateAcceptsSane) {
  const Platform p{2, GB, GB};
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, ValidateRejectsBroken) {
  EXPECT_THROW((Platform{0, GB, GB}).validate(), ContractViolation);
  EXPECT_THROW((Platform{2, 0.0, GB}).validate(), ContractViolation);
  EXPECT_THROW((Platform{2, GB, 0.0}).validate(), ContractViolation);
}

}  // namespace
}  // namespace madpipe
