#include "models/profile_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "models/zoo.hpp"
#include "util/expect.hpp"

namespace madpipe::models {
namespace {

TEST(ProfileIO, RoundTripsUniformChain) {
  const Chain original = make_uniform_chain(5, ms(1.5), ms(3.25), 7 * MB,
                                            13 * MB, 2 * MB, "roundtrip");
  const Chain parsed = profile_from_string(profile_to_string(original));
  EXPECT_EQ(parsed, original);
}

TEST(ProfileIO, RoundTripsRealNetwork) {
  NetworkConfig config;
  config.network = "resnet50";
  config.image_size = 256;
  config.batch = 2;
  const Chain original = build_network(config);
  const Chain parsed = profile_from_string(profile_to_string(original));
  EXPECT_EQ(parsed, original);
}

TEST(ProfileIO, ParsesHandWrittenDocument) {
  const std::string doc = R"(madpipe-profile-v1
# a tiny example
name tiny
input_bytes 100
layer a 0.001 0.002 10 20   # trailing comment
layer b 0.003 0.004 30 40
)";
  const Chain chain = profile_from_string(doc);
  EXPECT_EQ(chain.name(), "tiny");
  EXPECT_EQ(chain.length(), 2);
  EXPECT_DOUBLE_EQ(chain.activation(0), 100.0);
  EXPECT_DOUBLE_EQ(chain.layer(2).output_bytes, 40.0);
  EXPECT_DOUBLE_EQ(chain.forward_time(1), 0.001);
}

TEST(ProfileIO, RejectsMissingMagic) {
  EXPECT_THROW(profile_from_string("name x\n"), ContractViolation);
}

TEST(ProfileIO, RejectsMissingInputBytes) {
  EXPECT_THROW(
      profile_from_string("madpipe-profile-v1\nlayer a 1 1 1 1\n"),
      ContractViolation);
}

TEST(ProfileIO, RejectsEmptyProfile) {
  EXPECT_THROW(profile_from_string("madpipe-profile-v1\ninput_bytes 5\n"),
               ContractViolation);
}

TEST(ProfileIO, RejectsMalformedLayer) {
  EXPECT_THROW(profile_from_string(
                   "madpipe-profile-v1\ninput_bytes 5\nlayer a 1 1\n"),
               ContractViolation);
}

TEST(ProfileIO, RejectsNegativeFields) {
  EXPECT_THROW(profile_from_string("madpipe-profile-v1\ninput_bytes 5\n"
                                   "layer a -1 1 1 1\n"),
               ContractViolation);
}

TEST(ProfileIO, RejectsUnknownKeyword) {
  EXPECT_THROW(profile_from_string("madpipe-profile-v1\nbogus 1\n"),
               ContractViolation);
}

TEST(ProfileIO, ErrorMessagesCarryLineNumbers) {
  try {
    profile_from_string("madpipe-profile-v1\ninput_bytes 5\nlayer a 1 1\n");
    FAIL() << "expected a parse error";
  } catch (const ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(ProfileIO, FileRoundTrip) {
  const Chain original =
      make_uniform_chain(3, ms(1), ms(2), MB, 2 * MB, 3 * MB, "file-test");
  const std::string path = ::testing::TempDir() + "/madpipe_profile_test.txt";
  save_profile(original, path);
  const Chain loaded = load_profile(path);
  EXPECT_EQ(loaded, original);
  std::remove(path.c_str());
}

TEST(ProfileIO, LoadRejectsMissingFile) {
  EXPECT_THROW(load_profile("/nonexistent/definitely/missing.profile"),
               ContractViolation);
}

// --- non-throwing boundary API (added for the serve protocol) ---

TEST(ProfileIO, TryParseSucceedsAndMatchesThrowingParser) {
  const Chain original = make_uniform_chain(4, ms(1), ms(2), MB, 2 * MB, MB);
  const std::string text = profile_to_string(original);
  const ProfileParseResult result = try_profile_from_string(text);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(*result.chain, original);
  EXPECT_EQ(*result.chain, profile_from_string(text));
}

struct BadProfileCase {
  const char* name;
  const char* text;
  const char* error_fragment;
};

TEST(ProfileIO, TryParseTableOfBadInputs) {
  const BadProfileCase kCases[] = {
      {"empty", "", "empty document"},
      {"comments only", "# nothing here\n  \n", "empty document"},
      {"wrong magic", "madpipe-profile-v2\ninput_bytes 1\nlayer a 1 1 1 1\n",
       "expected 'madpipe-profile-v1'"},
      {"missing input_bytes", "madpipe-profile-v1\nlayer a 1 1 1 1\n",
       "missing input_bytes"},
      {"no layers", "madpipe-profile-v1\ninput_bytes 5\n",
       "profile has no layers"},
      {"truncated layer",
       "madpipe-profile-v1\ninput_bytes 5\nlayer a 1 1 1\n", "layer needs"},
      {"layer fields not numbers",
       "madpipe-profile-v1\ninput_bytes 5\nlayer a one 1 1 1\n",
       "layer needs"},
      {"trailing field",
       "madpipe-profile-v1\ninput_bytes 5\nlayer a 1 1 1 1 999\n",
       "trailing field '999'"},
      {"negative time",
       "madpipe-profile-v1\ninput_bytes 5\nlayer a -1 1 1 1\n",
       "non-negative"},
      // Stream extraction may reject "inf" outright (then the record reads
      // as truncated) or produce an infinity (then the finite check fires);
      // either way it must be a clean "layer ..." error, never a crash.
      {"non-finite bytes",
       "madpipe-profile-v1\ninput_bytes 5\nlayer a 1 1 inf 1\n", "layer"},
      {"negative input_bytes", "madpipe-profile-v1\ninput_bytes -2\n",
       "input_bytes needs"},
      {"non-finite input_bytes", "madpipe-profile-v1\ninput_bytes nan\n",
       "input_bytes needs"},
      {"duplicate layer id",
       "madpipe-profile-v1\ninput_bytes 5\nlayer a 1 1 1 1\nlayer a 2 2 2 2\n",
       "duplicate layer id 'a'"},
      {"unknown keyword", "madpipe-profile-v1\nbatch 32\n",
       "unknown keyword 'batch'"},
      {"missing name value", "madpipe-profile-v1\nname\ninput_bytes 1\n",
       "missing network name"},
  };
  for (const BadProfileCase& test_case : kCases) {
    const ProfileParseResult result = try_profile_from_string(test_case.text);
    EXPECT_FALSE(result.ok()) << test_case.name;
    EXPECT_FALSE(result.chain.has_value()) << test_case.name;
    EXPECT_NE(result.error.find(test_case.error_fragment), std::string::npos)
        << test_case.name << ": got '" << result.error << "'";
    // The throwing parser agrees, and its message matches.
    try {
      profile_from_string(test_case.text);
      ADD_FAILURE() << test_case.name << ": throwing parser accepted it";
    } catch (const ContractViolation& error) {
      EXPECT_NE(std::string(error.what()).find(test_case.error_fragment),
                std::string::npos)
          << test_case.name;
    }
  }
}

TEST(ProfileIO, TryParseErrorsCarryLineNumbers) {
  const ProfileParseResult result = try_profile_from_string(
      "madpipe-profile-v1\ninput_bytes 5\nlayer a 1 1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 3"), std::string::npos) << result.error;
}

TEST(ProfileIO, TryParseRejectsExcessiveLayerCount) {
  std::string text = "madpipe-profile-v1\ninput_bytes 5\n";
  for (int l = 0; l <= 65536; ++l) {
    text += "layer l" + std::to_string(l) + " 1 1 1 1\n";
  }
  const ProfileParseResult result = try_profile_from_string(text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("exceeds"), std::string::npos) << result.error;
}

TEST(ProfileIO, TryLoadReportsMissingFileAsError) {
  const ProfileParseResult result =
      try_load_profile("/nonexistent/definitely/missing.profile");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos)
      << result.error;
}

TEST(ProfileIO, TryLoadRoundTrip) {
  const Chain original =
      make_uniform_chain(3, ms(1), ms(2), MB, 2 * MB, 3 * MB, "try-file");
  const std::string path = ::testing::TempDir() + "/madpipe_try_profile.txt";
  save_profile(original, path);
  const ProfileParseResult result = try_load_profile(path);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(*result.chain, original);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace madpipe::models
