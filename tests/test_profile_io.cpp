#include "models/profile_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "models/zoo.hpp"
#include "util/expect.hpp"

namespace madpipe::models {
namespace {

TEST(ProfileIO, RoundTripsUniformChain) {
  const Chain original = make_uniform_chain(5, ms(1.5), ms(3.25), 7 * MB,
                                            13 * MB, 2 * MB, "roundtrip");
  const Chain parsed = profile_from_string(profile_to_string(original));
  EXPECT_EQ(parsed, original);
}

TEST(ProfileIO, RoundTripsRealNetwork) {
  NetworkConfig config;
  config.network = "resnet50";
  config.image_size = 256;
  config.batch = 2;
  const Chain original = build_network(config);
  const Chain parsed = profile_from_string(profile_to_string(original));
  EXPECT_EQ(parsed, original);
}

TEST(ProfileIO, ParsesHandWrittenDocument) {
  const std::string doc = R"(madpipe-profile-v1
# a tiny example
name tiny
input_bytes 100
layer a 0.001 0.002 10 20   # trailing comment
layer b 0.003 0.004 30 40
)";
  const Chain chain = profile_from_string(doc);
  EXPECT_EQ(chain.name(), "tiny");
  EXPECT_EQ(chain.length(), 2);
  EXPECT_DOUBLE_EQ(chain.activation(0), 100.0);
  EXPECT_DOUBLE_EQ(chain.layer(2).output_bytes, 40.0);
  EXPECT_DOUBLE_EQ(chain.forward_time(1), 0.001);
}

TEST(ProfileIO, RejectsMissingMagic) {
  EXPECT_THROW(profile_from_string("name x\n"), ContractViolation);
}

TEST(ProfileIO, RejectsMissingInputBytes) {
  EXPECT_THROW(
      profile_from_string("madpipe-profile-v1\nlayer a 1 1 1 1\n"),
      ContractViolation);
}

TEST(ProfileIO, RejectsEmptyProfile) {
  EXPECT_THROW(profile_from_string("madpipe-profile-v1\ninput_bytes 5\n"),
               ContractViolation);
}

TEST(ProfileIO, RejectsMalformedLayer) {
  EXPECT_THROW(profile_from_string(
                   "madpipe-profile-v1\ninput_bytes 5\nlayer a 1 1\n"),
               ContractViolation);
}

TEST(ProfileIO, RejectsNegativeFields) {
  EXPECT_THROW(profile_from_string("madpipe-profile-v1\ninput_bytes 5\n"
                                   "layer a -1 1 1 1\n"),
               ContractViolation);
}

TEST(ProfileIO, RejectsUnknownKeyword) {
  EXPECT_THROW(profile_from_string("madpipe-profile-v1\nbogus 1\n"),
               ContractViolation);
}

TEST(ProfileIO, ErrorMessagesCarryLineNumbers) {
  try {
    profile_from_string("madpipe-profile-v1\ninput_bytes 5\nlayer a 1 1\n");
    FAIL() << "expected a parse error";
  } catch (const ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(ProfileIO, FileRoundTrip) {
  const Chain original =
      make_uniform_chain(3, ms(1), ms(2), MB, 2 * MB, 3 * MB, "file-test");
  const std::string path = ::testing::TempDir() + "/madpipe_profile_test.txt";
  save_profile(original, path);
  const Chain loaded = load_profile(path);
  EXPECT_EQ(loaded, original);
  std::remove(path.c_str());
}

TEST(ProfileIO, LoadRejectsMissingFile) {
  EXPECT_THROW(load_profile("/nonexistent/definitely/missing.profile"),
               ContractViolation);
}

}  // namespace
}  // namespace madpipe::models
