// The madpipe-profile-v2 JSON format: round-trip exactness (including the
// scratch_bytes field v1 cannot carry), cross-format bit identity with v1,
// version auto-detection, and the strict path-numbered error model.
#include "models/profile_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "models/zoo.hpp"
#include "util/expect.hpp"

namespace madpipe::models {
namespace {

/// A chain exercising scratch_bytes, which make_uniform_chain cannot set.
Chain make_scratch_chain() {
  std::vector<Layer> layers;
  for (int l = 1; l <= 4; ++l) {
    Layer layer;
    layer.name = "s" + std::to_string(l);
    layer.forward_time = ms(1.25 * l);
    layer.backward_time = ms(2.5 * l);
    layer.weight_bytes = l * MB;
    layer.output_bytes = (l + 1) * MB;
    layer.scratch_bytes = (l % 2 == 0) ? l * 3.0 * MB : 0.0;
    layers.push_back(std::move(layer));
  }
  return Chain("scratchy", 7 * MB, std::move(layers));
}

TEST(ProfileJson, RoundTripsUniformChain) {
  const Chain original = make_uniform_chain(5, ms(1.5), ms(3.25), 7 * MB,
                                            13 * MB, 2 * MB, "roundtrip");
  const ProfileParseResult result =
      try_profile_from_json_string(profile_to_json_string(original));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(*result.chain, original);
}

TEST(ProfileJson, RoundTripsScratchBytes) {
  const Chain original = make_scratch_chain();
  const ProfileParseResult result =
      try_profile_from_json_string(profile_to_json_string(original));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(*result.chain, original);
  EXPECT_DOUBLE_EQ(result.chain->layer(2).scratch_bytes, 6.0 * MB);
}

TEST(ProfileJson, RoundTripsRealNetwork) {
  NetworkConfig config;
  config.network = "resnet50";
  config.image_size = 256;
  config.batch = 2;
  const Chain original = build_network(config);
  const ProfileParseResult result =
      try_profile_from_json_string(profile_to_json_string(original));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(*result.chain, original);
}

TEST(ProfileJson, WriterOmitsZeroScratchAndKeepsNonzero) {
  const std::string text = profile_to_json_string(make_scratch_chain());
  // Layers 2 and 4 carry scratch, layers 1 and 3 must not emit the key.
  EXPECT_EQ([&] {
    std::size_t count = 0;
    for (std::size_t pos = text.find("scratch_bytes");
         pos != std::string::npos; pos = text.find("scratch_bytes", pos + 1)) {
      ++count;
    }
    return count;
  }(), 2u);
}

// Both formats claim bit-exact number round-trips (%.17g text, shortest
// round-trip doubles in JSON). Feed extreme magnitudes through each.
TEST(ProfileJson, ExtremeMagnitudesRoundTripBitExactInBothFormats) {
  const double kValues[] = {
      0.0,
      1.0 / 3.0,
      0.1,
      1e-300,
      5e-324,                                  // min subnormal
      std::numeric_limits<double>::min(),      // min normal
      1e308,                                   // near max
      std::numeric_limits<double>::max(),
      123456789.123456789,
  };
  std::vector<Layer> layers;
  int id = 0;
  for (const double v : kValues) {
    Layer layer;
    layer.name = "x" + std::to_string(id++);
    // A layer needs strictly positive total compute; keep the extreme value
    // on one time field and all byte fields.
    layer.forward_time = v == 0.0 ? 1.0 : v;
    layer.backward_time = v;
    layer.weight_bytes = v;
    layer.output_bytes = v;
    layers.push_back(std::move(layer));
  }
  const Chain original("extremes", 5e-324, std::move(layers));

  const ProfileParseResult from_json =
      try_profile_from_json_string(profile_to_json_string(original));
  ASSERT_TRUE(from_json.ok()) << from_json.error;
  EXPECT_EQ(*from_json.chain, original) << "v2 JSON round-trip";

  const ProfileParseResult from_text =
      try_profile_from_string(profile_to_string(original));
  ASSERT_TRUE(from_text.ok()) << from_text.error;
  EXPECT_EQ(*from_text.chain, original) << "v1 text round-trip";
}

// A scratch-free chain written as v1 text and as v2 JSON must parse to
// bit-identical chains — the property that lets every CLI and serve entry
// point accept either format interchangeably.
TEST(ProfileJson, CrossFormatBitIdentity) {
  NetworkConfig config;
  config.network = "gpt2-xl";
  config.chain_length = 12;
  const Chain original = build_network(config);
  const ProfileParseResult v1 =
      try_profile_from_string(profile_to_string(original));
  const ProfileParseResult v2 =
      try_profile_from_string(profile_to_json_string(original));
  ASSERT_TRUE(v1.ok()) << v1.error;
  ASSERT_TRUE(v2.ok()) << v2.error;
  EXPECT_EQ(*v1.chain, *v2.chain);
  EXPECT_EQ(*v2.chain, original);
}

TEST(ProfileJson, AutoDetectSkipsLeadingWhitespace) {
  const Chain original = make_uniform_chain(2, ms(1), ms(2), MB, MB, MB);
  const std::string text = "\n  \t " + profile_to_json_string(original);
  const ProfileParseResult result = try_profile_from_string(text);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(*result.chain, original);
}

TEST(ProfileJson, ThrowingParserAcceptsJsonDocuments) {
  const Chain original = make_uniform_chain(3, ms(1), ms(2), MB, 2 * MB, MB);
  EXPECT_EQ(profile_from_string(profile_to_json_string(original)), original);
}

TEST(ProfileJson, FileRoundTripViaJsonWriter) {
  const Chain original = make_scratch_chain();
  const std::string path = ::testing::TempDir() + "/madpipe_profile_test.json";
  save_profile_json(original, path);
  const ProfileParseResult loaded = try_load_profile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(*loaded.chain, original);
  std::remove(path.c_str());
}

struct BadJsonProfileCase {
  const char* name;
  const char* text;
  const char* error_fragment;
};

TEST(ProfileJson, TableOfBadInputs) {
  const BadJsonProfileCase kCases[] = {
      {"invalid JSON", "{ not json", "invalid JSON"},
      {"root is array", "[1, 2]", "document must be a JSON object"},
      {"unknown root field",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"batch":4,)"
       R"("layers":[{"name":"a","forward_seconds":1,"backward_seconds":1,)"
       R"("weight_bytes":1,"output_bytes":1}]})",
       "at batch: unknown field"},
      {"missing schema",
       R"({"input_bytes":1,"layers":[]})", "missing schema field"},
      {"schema not a string",
       R"({"schema":2,"input_bytes":1,"layers":[]})", "missing schema field"},
      {"wrong schema",
       R"({"schema":"madpipe-profile-v3","input_bytes":1,"layers":[]})",
       "expected 'madpipe-profile-v2', got 'madpipe-profile-v3'"},
      {"name not a string",
       R"({"schema":"madpipe-profile-v2","name":7,"input_bytes":1,)"
       R"("layers":[]})",
       "at name: must be a string"},
      {"missing input_bytes",
       R"({"schema":"madpipe-profile-v2","layers":[]})",
       "at input_bytes: missing required field"},
      {"input_bytes not a number",
       R"({"schema":"madpipe-profile-v2","input_bytes":"big","layers":[]})",
       "at input_bytes: must be a number"},
      {"negative input_bytes",
       R"({"schema":"madpipe-profile-v2","input_bytes":-1,"layers":[]})",
       "at input_bytes: must be a non-negative finite number"},
      {"missing layers",
       R"({"schema":"madpipe-profile-v2","input_bytes":1})",
       "at layers: missing layers array"},
      {"layers not an array",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":{}})",
       "at layers: missing layers array"},
      {"empty layers",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[]})",
       "profile has no layers"},
      {"layer not an object",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[5]})",
       "at layers[0]: must be an object"},
      {"unknown layer field",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[)"
       R"({"name":"a","forward_seconds":1,"backward_seconds":1,)"
       R"("weight_bytes":1,"output_bytes":1,"flops":9}]})",
       "at layers[0].flops: unknown field"},
      {"missing layer name",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[)"
       R"({"forward_seconds":1,"backward_seconds":1,"weight_bytes":1,)"
       R"("output_bytes":1}]})",
       "at layers[0].name: must be a non-empty string"},
      {"empty layer name",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[)"
       R"({"name":"","forward_seconds":1,"backward_seconds":1,)"
       R"("weight_bytes":1,"output_bytes":1}]})",
       "at layers[0].name: must be a non-empty string"},
      {"duplicate layer name",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[)"
       R"({"name":"a","forward_seconds":1,"backward_seconds":1,)"
       R"("weight_bytes":1,"output_bytes":1},)"
       R"({"name":"a","forward_seconds":1,"backward_seconds":1,)"
       R"("weight_bytes":1,"output_bytes":1}]})",
       "at layers[1].name: duplicate layer id 'a'"},
      {"missing layer field",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[)"
       R"({"name":"a","forward_seconds":1,"backward_seconds":1,)"
       R"("weight_bytes":1}]})",
       "at layers[0].output_bytes: missing required field"},
      {"layer field not a number",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[)"
       R"({"name":"a","forward_seconds":"fast","backward_seconds":1,)"
       R"("weight_bytes":1,"output_bytes":1}]})",
       "at layers[0].forward_seconds: must be a number"},
      {"negative layer field",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[)"
       R"({"name":"a","forward_seconds":1,"backward_seconds":-2,)"
       R"("weight_bytes":1,"output_bytes":1}]})",
       "at layers[0].backward_seconds: must be a non-negative finite number"},
      {"negative scratch",
       R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[)"
       R"({"name":"a","forward_seconds":1,"backward_seconds":1,)"
       R"("weight_bytes":1,"output_bytes":1,"scratch_bytes":-3}]})",
       "at layers[0].scratch_bytes: must be a non-negative finite number"},
  };
  for (const BadJsonProfileCase& test_case : kCases) {
    // Directly via the v2 entry point...
    const ProfileParseResult direct =
        try_profile_from_json_string(test_case.text);
    EXPECT_FALSE(direct.ok()) << test_case.name;
    EXPECT_NE(direct.error.find(test_case.error_fragment), std::string::npos)
        << test_case.name << ": got '" << direct.error << "'";
    // ...and through version auto-detection (all start with '{' or '[';
    // a '['-rooted document is not detected as JSON, so skip that one).
    if (test_case.text[0] == '{') {
      const ProfileParseResult detected =
          try_profile_from_string(test_case.text);
      EXPECT_FALSE(detected.ok()) << test_case.name;
      EXPECT_EQ(detected.error, direct.error) << test_case.name;
    }
  }
}

TEST(ProfileJson, RejectsExcessiveLayerCount) {
  std::string text =
      R"({"schema":"madpipe-profile-v2","input_bytes":1,"layers":[)";
  for (int l = 0; l <= 65536; ++l) {
    if (l > 0) text += ',';
    text += R"({"name":"l)" + std::to_string(l) +
            R"(","forward_seconds":1,"backward_seconds":1,)"
            R"("weight_bytes":1,"output_bytes":1})";
  }
  text += "]}";
  const ProfileParseResult result = try_profile_from_json_string(text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("exceeds"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace madpipe::models
