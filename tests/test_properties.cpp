// Cross-module integration and property tests on the paper's actual
// evaluation networks: every planner output must pass the exact verifier,
// the simulator must confirm analytic throughput, and the qualitative
// relations of the paper's evaluation must hold.
#include <gtest/gtest.h>

#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "pipedream/pipedream.hpp"
#include "schedule/one_f_one_b.hpp"
#include "sim/event_sim.hpp"

namespace madpipe {
namespace {

struct Scenario {
  std::string network;
  int processors;
  double memory_gb;
  double bandwidth_gbs;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return s.network + "_P" + std::to_string(s.processors) + "_M" +
         std::to_string(static_cast<int>(s.memory_gb)) + "_B" +
         std::to_string(static_cast<int>(s.bandwidth_gbs));
}

class PaperScenario : public ::testing::TestWithParam<Scenario> {
 protected:
  Chain chain() const {
    models::NetworkConfig config;
    config.network = GetParam().network;
    config.image_size = 500;  // half the paper's size: keeps tests fast
    config.batch = 8;
    config.chain_length = 16;
    return models::build_network(config);
  }
  Platform platform() const {
    return Platform{GetParam().processors, GetParam().memory_gb * GB,
                    GetParam().bandwidth_gbs * GB};
  }
};

TEST_P(PaperScenario, PipeDreamPlanValidates) {
  const Chain c = chain();
  const Platform p = platform();
  const auto plan = plan_pipedream(c, p);
  if (!plan) GTEST_SKIP() << "no PipeDream partition fits";
  const auto check = validate_pattern(plan->pattern, plan->allocation, c, p);
  EXPECT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST_P(PaperScenario, MadPipePlanValidates) {
  const Chain c = chain();
  const Platform p = platform();
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  const auto plan = plan_madpipe(c, p, options);
  if (!plan) GTEST_SKIP() << "infeasible";
  const auto check = validate_pattern(plan->pattern, plan->allocation, c, p);
  EXPECT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
}

TEST_P(PaperScenario, SimulatorConfirmsAnalyticThroughput) {
  const Chain c = chain();
  const Platform p = platform();
  const auto plan = plan_pipedream(c, p);
  if (!plan) GTEST_SKIP();
  const auto sim =
      simulate_pattern(plan->pattern, plan->allocation, c, p, {32});
  EXPECT_LE(sim.steady_period, plan->period() * (1.0 + 1e-6));
  // The ASAP execution cannot beat the bottleneck-resource bound either.
  EXPECT_GE(sim.steady_period,
            plan->allocation.period_lower_bound(c, p) * (1.0 - 1e-6));
}

TEST_P(PaperScenario, SimulatedMemoryFitsPlatform) {
  const Chain c = chain();
  const Platform p = platform();
  const auto plan = plan_pipedream(c, p);
  if (!plan) GTEST_SKIP();
  const auto sim =
      simulate_pattern(plan->pattern, plan->allocation, c, p, {32});
  for (const Bytes peak : sim.processor_memory_peak) {
    EXPECT_LE(peak, p.memory_per_processor * (1.0 + 1e-9));
  }
}

TEST_P(PaperScenario, PhaseOneIsLowerBoundOnSchedule) {
  const Chain c = chain();
  const Platform p = platform();
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  const auto plan = plan_madpipe(c, p, options);
  if (!plan) GTEST_SKIP();
  EXPECT_GE(plan->period(), plan->phase1_period * (1.0 - 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaperScenario,
    ::testing::Values(Scenario{"resnet50", 2, 4.0, 12.0},
                      Scenario{"resnet50", 4, 2.0, 12.0},
                      Scenario{"resnet50", 4, 8.0, 24.0},
                      Scenario{"resnet101", 4, 4.0, 12.0},
                      Scenario{"resnet101", 8, 8.0, 12.0},
                      Scenario{"inception_v3", 4, 2.0, 12.0},
                      Scenario{"inception_v3", 2, 8.0, 24.0},
                      Scenario{"densenet121", 4, 4.0, 12.0},
                      Scenario{"densenet121", 8, 2.0, 24.0}),
    scenario_name);

TEST(PaperShape, MoreMemoryNeverSlowsPipeDreamPartitioning) {
  models::NetworkConfig config;
  config.network = "resnet50";
  config.image_size = 500;
  config.batch = 8;
  config.chain_length = 16;
  const Chain c = models::build_network(config);
  Seconds previous = std::numeric_limits<double>::infinity();
  for (const double mem_gb : {2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
    const Platform p{4, mem_gb * GB, 12 * GB};
    const auto partition = pipedream_partition(c, p);
    if (!partition) continue;
    EXPECT_LE(partition->dp_period, previous * (1.0 + 1e-9)) << mem_gb;
    previous = partition->dp_period;
  }
}

TEST(PaperShape, SpeedupGrowsWithProcessorsGivenMemory) {
  models::NetworkConfig config;
  config.network = "resnet50";
  config.image_size = 500;
  config.batch = 8;
  config.chain_length = 16;
  const Chain c = models::build_network(config);
  double speedup2 = 0.0, speedup8 = 0.0;
  for (const int procs : {2, 8}) {
    const Platform p{procs, 16 * GB, 12 * GB};
    MadPipeOptions options;
    options.phase1.dp.grid = Discretization::coarse();
    const auto plan = plan_madpipe(c, p, options);
    ASSERT_TRUE(plan.has_value()) << procs;
    (procs == 2 ? speedup2 : speedup8) = plan->speedup(c);
  }
  EXPECT_GT(speedup8, speedup2);
}

}  // namespace
}  // namespace madpipe
