#include "schedule/recompute.hpp"

#include <gtest/gtest.h>

#include "core/memory_model.hpp"
#include "core/pattern.hpp"
#include "pipedream/pipedream.hpp"
#include "util/expect.hpp"

namespace madpipe {
namespace {

Chain chain6() {
  std::vector<Layer> layers{
      {"l1", ms(2), ms(4), 1 * MB, 80 * MB},
      {"l2", ms(3), ms(6), 2 * MB, 60 * MB},
      {"l3", ms(2), ms(4), 4 * MB, 40 * MB},
      {"l4", ms(4), ms(8), 8 * MB, 30 * MB},
      {"l5", ms(2), ms(4), 16 * MB, 20 * MB},
      {"l6", ms(1), ms(2), 32 * MB, 10 * MB},
  };
  return Chain("rc", 100 * MB, std::move(layers));
}

TEST(Recompute, MergePreservesComputeAndWeights) {
  const Chain c = chain6();
  const Partitioning parts(c, {{1, 3}, {4, 6}});
  const Chain merged = merge_recompute_segments(c, parts);
  ASSERT_EQ(merged.length(), 2);
  EXPECT_DOUBLE_EQ(merged.forward_load(1, 2), c.forward_load(1, 6));
  // Backward gains one forward replay per segment.
  EXPECT_DOUBLE_EQ(merged.backward_load(1, 2),
                   c.backward_load(1, 6) + c.forward_load(1, 6));
  EXPECT_DOUBLE_EQ(merged.weight_sum(1, 2), c.weight_sum(1, 6));
}

TEST(Recompute, MergedSegmentStoresOnlyItsInput) {
  const Chain c = chain6();
  const Partitioning parts(c, {{1, 3}, {4, 6}});
  const Chain merged = merge_recompute_segments(c, parts);
  // Per in-flight batch, segment 1 stores a_0 = 100 MB (not 100+80+60).
  EXPECT_DOUBLE_EQ(merged.stored_activation_sum(1, 1), 100 * MB);
  // The freed bytes reappear as always-resident replay scratch.
  EXPECT_DOUBLE_EQ(merged.scratch_sum(1, 1), (80 + 60) * MB);
  // Segment boundary activations are preserved.
  EXPECT_DOUBLE_EQ(merged.activation(1), c.activation(3));
  EXPECT_DOUBLE_EQ(merged.activation(2), c.activation(6));
}

TEST(Recompute, StageMemoryFormulaMatchesMergedChain) {
  const Chain c = chain6();
  const Partitioning parts(c, {{1, 3}, {4, 6}});
  const Chain merged = merge_recompute_segments(c, parts);
  for (int g : {1, 2, 3}) {
    EXPECT_NEAR(recompute_stage_memory(c, 1, 3, g),
                stage_memory(merged, 1, 1, g), 1.0)
        << g;
    EXPECT_NEAR(recompute_stage_memory(c, 4, 6, g),
                stage_memory(merged, 2, 2, g), 1.0)
        << g;
  }
}

TEST(Recompute, MemorySavingGrowsWithInflight) {
  const Chain c = chain6();
  // At g in-flight batches, recompute stores g·a_in + transient instead of
  // g·ā: the saving is (g−1)·(ā−a_in) and must grow with g.
  Bytes previous_saving = -1.0;
  for (int g = 1; g <= 5; ++g) {
    const Bytes plain = stage_memory(c, 1, 3, g);
    const Bytes recomputed = recompute_stage_memory(c, 1, 3, g);
    const Bytes saving = plain - recomputed;
    EXPECT_GE(saving, previous_saving);
    previous_saving = saving;
  }
  EXPECT_GT(previous_saving, 0.0);
}

TEST(Recompute, PlanProducesValidPattern) {
  const Chain c = chain6();
  const Platform p{3, 500 * MB, 12 * GB};
  const auto result = plan_recompute_pipeline(c, p);
  ASSERT_TRUE(result.has_value());
  const auto check = validate_pattern(result->plan.pattern,
                                      result->plan.allocation,
                                      result->merged_chain, p);
  EXPECT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);
  EXPECT_EQ(result->plan.planner, "recompute+1f1b*");
}

TEST(Recompute, SurvivesMemoryWherePlainPipelineFails) {
  // Alternating bottleneck activations (wide layer -> narrow layer): a
  // recompute segment spanning a wide/narrow pair stores only the narrow
  // input per in-flight batch, while plain planning must keep every wide
  // internal tensor per batch.
  std::vector<Layer> layers;
  for (int i = 0; i < 4; ++i) {
    layers.push_back(Layer{"wide" + std::to_string(i), ms(5), ms(10), 1 * MB,
                           400 * MB});
    layers.push_back(Layer{"narrow" + std::to_string(i), ms(5), ms(10),
                           1 * MB, 20 * MB});
  }
  const Chain c("alternating", 20 * MB, std::move(layers));
  bool found_window = false;
  for (double mem = 0.5; mem <= 3.0; mem += 0.125) {
    const Platform p{4, mem * GB, 12 * GB};
    const bool recompute_ok = plan_recompute_pipeline(c, p).has_value();
    const bool plain_ok = plan_pipedream(c, p).has_value();
    if (recompute_ok && !plain_ok) found_window = true;
    if (plain_ok) {
      // Once plain fits, recompute must fit too (it never needs more).
      EXPECT_TRUE(recompute_ok) << mem;
    }
  }
  EXPECT_TRUE(found_window);
}

TEST(Recompute, CostsThroughputWhenMemoryIsAmple) {
  const Chain c = chain6();
  const Platform p{3, 100 * GB, 1e6 * GB};
  const auto recomputed = plan_recompute_pipeline(c, p);
  const auto plain = plan_pipedream(c, p);
  ASSERT_TRUE(recomputed.has_value());
  ASSERT_TRUE(plain.has_value());
  // The forward replay makes the bottleneck strictly heavier.
  EXPECT_GT(recomputed->plan.period(), plain->period());
}

TEST(Recompute, InfeasibleWhenWeightsDominate) {
  const Chain c = make_uniform_chain(4, ms(1), ms(1), GB, MB, MB);
  const Platform p{2, GB, 12 * GB};
  EXPECT_FALSE(plan_recompute_pipeline(c, p).has_value());
}

}  // namespace
}  // namespace madpipe
