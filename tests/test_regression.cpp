// Regression tripwires: characteristic magnitudes of the paper's evaluation
// workloads. These pin the synthetic-profile substrate — if the cost model
// or shape arithmetic changes, these fail loudly rather than silently
// shifting every experiment.
#include <gtest/gtest.h>

#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "pipedream/pipedream.hpp"

namespace madpipe {
namespace {

TEST(Regression, Resnet50PaperChainShape) {
  const Chain c = models::paper_network("resnet50");
  EXPECT_EQ(c.length(), 18);
  // Batch 8 of 3x1000x1000 fp32: 96 MB input.
  EXPECT_DOUBLE_EQ(c.activation(0), 96e6);
  // Stem output: 64 x 250 x 250 x 4 B x 8 = 128 MB.
  EXPECT_DOUBLE_EQ(c.activation(1), 128e6);
  // conv2 bottleneck outputs: 256 x 500^2 /4... = 512 MB at 250^2 x 1024?
  // conv2_x works on 250x250 with 256 channels: 256*250*250*4*8 = 512 MB.
  EXPECT_DOUBLE_EQ(c.activation(2), 512e6);
  // Head output: 1000 logits x 4 B x 8.
  EXPECT_DOUBLE_EQ(c.activation(18), 32000.0);
}

TEST(Regression, Resnet50Magnitudes) {
  const Chain c = models::paper_network("resnet50");
  // Weights ≈ 25.6M params x 4B.
  EXPECT_NEAR(c.weight_sum(1, 18), 102e6, 3e6);
  // One in-flight batch of stored activations: ~3.8 GB.
  EXPECT_NEAR(c.stored_activation_sum(1, 18), 3.77e9, 0.1e9);
  // Sequential batch time in the hundreds of milliseconds.
  EXPECT_GT(c.total_compute(), 0.3);
  EXPECT_LT(c.total_compute(), 1.2);
}

TEST(Regression, NetworkComputeOrdering) {
  // ResNet-101 must cost roughly twice ResNet-50; DenseNet-121 less than
  // ResNet-50 (it is FLOP-light but activation-heavy).
  const Seconds r50 = models::paper_network("resnet50").total_compute();
  const Seconds r101 = models::paper_network("resnet101").total_compute();
  const Seconds dense = models::paper_network("densenet121").total_compute();
  EXPECT_GT(r101, 1.6 * r50);
  EXPECT_LT(r101, 2.4 * r50);
  EXPECT_LT(dense, r50);
}

TEST(Regression, DenseNetIsActivationHeaviest) {
  Bytes worst = 0.0;
  std::string worst_name;
  for (const std::string& name : models::list_networks()) {
    const Chain c = models::paper_network(name);
    const Bytes act = c.stored_activation_sum(1, c.length());
    if (act > worst) {
      worst = act;
      worst_name = name;
    }
  }
  EXPECT_EQ(worst_name, "densenet121");
}

TEST(Regression, Fig6AnchorCells) {
  // Two anchor cells of Figure 6 (values pinned from this implementation;
  // they guard the planners end to end, not the paper's absolute numbers).
  const Chain c = models::paper_network("resnet50");
  {
    const Platform p{4, 16 * GB, 12 * GB};
    const auto pd = plan_pipedream(c, p);
    ASSERT_TRUE(pd.has_value());
    EXPECT_NEAR(pd->period(), 166.3e-3, 1.5e-3);
  }
  {
    const Platform p{2, 4 * GB, 12 * GB};
    const auto pd = plan_pipedream(c, p);
    ASSERT_TRUE(pd.has_value());
    EXPECT_NEAR(pd->period(), 478.9e-3, 2e-3);
  }
}

TEST(Regression, MemoryThreeGBOnlyMadPipeSurvives) {
  // At M = 3 GB and P = 2, PipeDream's estimate admits no partitioning but
  // MadPipe still finds one — the qualitative advantage the paper reports
  // for tight memory.
  const Chain c = models::paper_network("resnet50");
  const Platform p{2, 3 * GB, 12 * GB};
  EXPECT_FALSE(plan_pipedream(c, p).has_value());
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::paper();
  const auto plan = plan_madpipe(c, p, options);
  ASSERT_TRUE(plan.has_value());
  const auto check = validate_pattern(plan->pattern, plan->allocation, c, p);
  EXPECT_TRUE(check.valid);
}

}  // namespace
}  // namespace madpipe
