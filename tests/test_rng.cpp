// util::Rng tests: the portability contract. Fleet traces and bench
// shuffles are reproduced from a seed across hosts, so the generator is
// pinned to golden splitmix64 output (not just self-consistency) and every
// derived draw is checked for its documented range.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace madpipe::util {
namespace {

TEST(Rng, MatchesSplitmix64ReferenceOutput) {
  // First four outputs of reference splitmix64 seeded with 42 (computed
  // from the Steele/Lea/Flood constants independently of this code). If
  // these ever change, every committed seeded artifact changes with them.
  Rng rng(42);
  EXPECT_EQ(rng.next_u64(), 0xBDD732262FEB6E95ull);
  EXPECT_EQ(rng.next_u64(), 0x28EFE333B266F103ull);
  EXPECT_EQ(rng.next_u64(), 0x47526757130F9F52ull);
  EXPECT_EQ(rng.next_u64(), 0x581CE1FF0E4AE394ull);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBoundAndHitsAllResidues) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<std::size_t>(v)];
  }
  // Lemire reduction is unbiased; at n=1000 per bucket every residue must
  // appear (a missing one would mean the high-multiply is broken).
  for (int c : counts) EXPECT_GT(c, 0);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusiveOnBothEnds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const long long v = rng.range(2, 4);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 4);
    saw_lo |= (v == 2);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.range(9, 9), 9);
  EXPECT_EQ(rng.range(9, 3), 9);  // degenerate bounds collapse to lo
}

TEST(Rng, ExponentialIsPositiveWithRoughlyTheRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, ShuffleIsAPermutationAndSeedReproducible) {
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> once = items;
  Rng a(99);
  a.shuffle(once);
  std::vector<int> sorted = once;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);   // permutation: nothing lost, nothing invented
  EXPECT_NE(once, items);     // and it actually moved (100! odds otherwise)

  std::vector<int> twice(100);
  std::iota(twice.begin(), twice.end(), 0);
  Rng b(99);
  b.shuffle(twice);
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace madpipe::util
