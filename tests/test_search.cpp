#include "madpipe/search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace madpipe {
namespace {

Phase1Options quick_options() {
  Phase1Options options;
  options.dp.grid = Discretization::coarse();
  return options;
}

TEST(Phase1, FindsBalancedSolutionWithAmpleMemory) {
  const Chain c = make_uniform_chain(8, ms(5), ms(10), MB, MB, MB);
  const Platform p{4, 1e6 * GB, 1e6 * GB};
  const auto result = madpipe_phase1(c, p, quick_options());
  ASSERT_TRUE(result.feasible());
  EXPECT_NEAR(result.period, ms(30), ms(1.5));
}

TEST(Phase1, TraceRecordsEveryIteration) {
  const Chain c = make_uniform_chain(8, ms(5), ms(10), MB, 20 * MB, MB);
  const Platform p{4, 4 * GB, 12 * GB};
  Phase1Options options = quick_options();
  options.iterations = 6;
  const auto result = madpipe_phase1(c, p, options);
  EXPECT_LE(result.trace.size(), 6u);
  EXPECT_GE(result.trace.size(), 1u);
}

TEST(Phase1, BestPeriodIsMinOfTrace) {
  const Chain c = make_uniform_chain(10, ms(2), ms(4), 5 * MB, 60 * MB, MB);
  const Platform p{4, 2 * GB, 12 * GB};
  const auto result = madpipe_phase1(c, p, quick_options());
  ASSERT_TRUE(result.feasible());
  Seconds min_achieved = std::numeric_limits<double>::infinity();
  for (const auto& it : result.trace) {
    min_achieved = std::min(min_achieved, it.achieved);
  }
  EXPECT_DOUBLE_EQ(result.period, min_achieved);
}

TEST(Phase1, AchievedAlwaysAtLeastTarget) {
  const Chain c = make_uniform_chain(10, ms(2), ms(4), 5 * MB, 60 * MB, MB);
  const Platform p{4, 2 * GB, 12 * GB};
  const auto result = madpipe_phase1(c, p, quick_options());
  for (const auto& it : result.trace) {
    EXPECT_GE(it.achieved, it.target - 1e-12);
  }
}

TEST(Phase1, InfeasibleWhenMemoryHopeless) {
  const Chain c = make_uniform_chain(6, ms(2), ms(4), GB, 100 * MB, MB);
  const Platform p{2, GB, 12 * GB};
  const auto result = madpipe_phase1(c, p, quick_options());
  EXPECT_FALSE(result.feasible());
  EXPECT_TRUE(std::isinf(result.period));
}

TEST(Phase1, KeepsIterateAllocationsOnRequest) {
  const Chain c = make_uniform_chain(8, ms(2), ms(4), 5 * MB, 40 * MB, MB);
  const Platform p{3, 2 * GB, 12 * GB};
  Phase1Options options = quick_options();
  options.keep_iterate_allocations = true;
  const auto result = madpipe_phase1(c, p, options);
  ASSERT_TRUE(result.feasible());
  bool any = false;
  for (const auto& it : result.trace) {
    if (it.allocation.has_value()) any = true;
  }
  EXPECT_TRUE(any);
}

TEST(Phase1, IterateAllocationsOmittedByDefault) {
  const Chain c = make_uniform_chain(8, ms(2), ms(4), 5 * MB, 40 * MB, MB);
  const Platform p{3, 2 * GB, 12 * GB};
  const auto result = madpipe_phase1(c, p, quick_options());
  for (const auto& it : result.trace) {
    EXPECT_FALSE(it.allocation.has_value());
  }
}

TEST(Phase1, MorePressureNeverImprovesPeriod) {
  const Chain c = make_uniform_chain(10, ms(2), ms(4), 10 * MB, 80 * MB, MB);
  Seconds previous = -1.0;
  for (const double mem_gb : {8.0, 4.0, 2.0, 1.2}) {
    const Platform p{4, mem_gb * GB, 12 * GB};
    const auto result = madpipe_phase1(c, p, quick_options());
    if (!result.feasible()) break;
    if (previous >= 0.0) {
      EXPECT_GE(result.period, previous * (1.0 - 0.05)) << mem_gb;
    }
    previous = result.period;
  }
}

}  // namespace
}  // namespace madpipe
