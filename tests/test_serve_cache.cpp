// ShardedPlanCache unit tests: LRU ordering, byte-budget eviction, TTL
// expiry, digest-collision safety and concurrent access.
#include "serve/plan_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace madpipe::serve {
namespace {

/// A synthetic canonical request with a chosen key/fingerprint (the cache
/// never looks at the chain beyond storing plans, so a tiny one suffices).
CanonicalRequest synthetic(std::uint64_t key, const std::string& fingerprint) {
  CanonicalRequest request{make_uniform_chain(2, ms(1), ms(2), MB, MB, MB),
                           Platform{2, GB, GB},
                           1.0,
                           1.0,
                           true,
                           fingerprint,
                           key};
  return request;
}

CachedPlan feasible_plan(double period = 0.5) {
  const Chain chain = make_uniform_chain(2, ms(1), ms(2), MB, MB, MB);
  Allocation allocation(Partitioning(chain, {Stage{1, 2}}), {0}, 2);
  PeriodicPattern pattern;
  pattern.period = period;
  CachedPlan cached;
  cached.plan = Plan{"test", std::move(allocation), std::move(pattern),
                     period, 0.0, PlannerStats{}};
  return cached;
}

TEST(ServeCache, InsertFindRoundTrip) {
  ShardedPlanCache cache;
  const CanonicalRequest request = synthetic(42, "fp42");
  EXPECT_FALSE(cache.find(request).has_value());
  cache.insert(request, feasible_plan(0.25));
  const std::optional<CachedPlan> hit = cache.find(request);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->feasible());
  EXPECT_EQ(hit->plan->pattern.period, 0.25);
  const PlanCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.entries, 1);
  EXPECT_GT(counters.bytes, 0);
}

TEST(ServeCache, NegativeCachingStoresInfeasible) {
  ShardedPlanCache cache;
  const CanonicalRequest request = synthetic(7, "fp7");
  cache.insert(request, CachedPlan{});
  const std::optional<CachedPlan> hit = cache.find(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->feasible());
}

TEST(ServeCache, OverwriteSameKeyKeepsOneEntry) {
  ShardedPlanCache cache;
  const CanonicalRequest request = synthetic(9, "fp9");
  cache.insert(request, feasible_plan(1.0));
  cache.insert(request, feasible_plan(2.0));
  EXPECT_EQ(cache.counters().entries, 1);
  const std::optional<CachedPlan> hit = cache.find(request);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->plan->pattern.period, 2.0);
}

TEST(ServeCache, DigestCollisionIsAMissNotAWrongPlan) {
  ShardedPlanCache cache;
  // Same 64-bit key, different fingerprints: a digest collision.
  const CanonicalRequest a = synthetic(1234, "fingerprint-a");
  const CanonicalRequest b = synthetic(1234, "fingerprint-b");
  cache.insert(a, feasible_plan(1.0));
  EXPECT_FALSE(cache.find(b).has_value());
  EXPECT_EQ(cache.counters().key_collisions, 1);
  // The colliding entry is still intact for its real owner.
  EXPECT_TRUE(cache.find(a).has_value());
}

TEST(ServeCache, ByteBudgetEvictsLeastRecentlyUsed) {
  PlanCacheOptions options;
  options.shards = 1;  // single shard so the LRU order is global
  options.byte_budget = 1;  // every insert overflows: only the newest stays
  ShardedPlanCache cache(options);
  const CanonicalRequest a = synthetic(1, "a");
  const CanonicalRequest b = synthetic(2, "b");
  cache.insert(a, feasible_plan());
  cache.insert(b, feasible_plan());
  EXPECT_FALSE(cache.find(a).has_value());  // evicted as LRU tail
  EXPECT_TRUE(cache.find(b).has_value());   // newest always survives
  EXPECT_GE(cache.counters().evictions, 1);
  EXPECT_EQ(cache.counters().entries, 1);
}

TEST(ServeCache, LruRefreshOnHitProtectsHotEntries) {
  // Measure one entry's byte charge (fingerprints below all have the same
  // length, so every entry costs the same) to size a budget of exactly two.
  PlanCacheOptions probe_options;
  probe_options.shards = 1;
  ShardedPlanCache probe(probe_options);
  probe.insert(synthetic(1, "a"), feasible_plan());
  const long long entry_bytes = probe.counters().bytes;
  ASSERT_GT(entry_bytes, 0);

  PlanCacheOptions tight;
  tight.shards = 1;
  tight.byte_budget = 2 * entry_bytes + entry_bytes / 2;  // two fit, not three
  ShardedPlanCache small(tight);
  const CanonicalRequest a = synthetic(1, "a");
  const CanonicalRequest b = synthetic(2, "b");
  small.insert(a, feasible_plan());
  small.insert(b, feasible_plan());
  EXPECT_TRUE(small.find(a).has_value());  // refresh a; b is now the tail
  small.insert(synthetic(3, "c"), feasible_plan());
  EXPECT_TRUE(small.find(a).has_value());
  EXPECT_FALSE(small.find(b).has_value());
}

TEST(ServeCache, TtlExpiresEntries) {
  PlanCacheOptions options;
  options.ttl_seconds = 1e-9;  // expires effectively immediately
  ShardedPlanCache cache(options);
  const CanonicalRequest request = synthetic(5, "fp5");
  cache.insert(request, feasible_plan());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(cache.find(request).has_value());
  EXPECT_EQ(cache.counters().expirations, 1);
  EXPECT_EQ(cache.counters().entries, 0);
}

TEST(ServeCache, ClearEmptiesEveryShard) {
  ShardedPlanCache cache;
  for (std::uint64_t k = 0; k < 64; ++k) {
    cache.insert(synthetic(k * 0x0101010101010101ull, std::to_string(k)),
                 feasible_plan());
  }
  EXPECT_EQ(cache.counters().entries, 64);
  cache.clear();
  EXPECT_EQ(cache.counters().entries, 0);
  EXPECT_EQ(cache.counters().bytes, 0);
}

TEST(ServeCache, ConcurrentMixedOperationsStayConsistent) {
  PlanCacheOptions options;
  options.shards = 4;
  options.byte_budget = 64 * 1024;  // force ongoing eviction under load
  ShardedPlanCache cache(options);
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::atomic<long long> observed_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t key =
            static_cast<std::uint64_t>((t * kOps + i) % 97) *
            0x9e3779b97f4a7c15ull;
        const CanonicalRequest request =
            synthetic(key, "fp" + std::to_string(key));
        if (i % 3 == 0) {
          cache.insert(request, feasible_plan());
        } else if (cache.find(request).has_value()) {
          observed_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const PlanCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits, observed_hits.load());
  EXPECT_LE(counters.bytes, static_cast<long long>(64 * 1024 + 4096));
  EXPECT_GE(counters.entries, 0);
}

}  // namespace
}  // namespace madpipe::serve
