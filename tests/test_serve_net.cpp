// NetServer loopback integration tests: the TCP front-end must speak
// newline-delimited madpipe-serve-v1 faithfully (miss/hit round trips bit
// identical to batch-mode serve, responses in request order), survive
// malformed frames, slow writers and half-closed peers, shed load per its
// admission-control knobs, and shut down gracefully with every in-flight
// response delivered.
#include "serve/net/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "models/profile_io.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "serve/net/admin.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/net.hpp"

namespace madpipe::serve::net {
namespace {

using namespace std::chrono_literals;

/// One blocking loopback client speaking the newline framing.
class Client {
 public:
  explicit Client(std::uint16_t port)
      : fd_(madpipe::net::connect_tcp("127.0.0.1", port)) {}

  bool ok() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  bool send(const std::string& bytes) {
    return madpipe::net::write_all(fd_.get(), bytes.data(), bytes.size());
  }

  bool recv(std::string& line) {
    line.clear();
    return madpipe::net::read_line(fd_.get(), line, carry_);
  }

  /// SHUT_WR: we promise to send nothing further; reads stay open.
  void half_close() { ::shutdown(fd_.get(), SHUT_WR); }

 private:
  madpipe::net::FdGuard fd_;
  std::string carry_;
};

/// A cheap request (resnet50/8 on 2 GPUs plans in well under a millisecond)
/// with an id and a distinguishing memory size.
std::string fast_frame(const std::string& id, double memory_gb = 8.0) {
  json::Writer w;
  w.begin_object();
  w.key("id"); w.value(id);
  w.key("network");
  w.begin_object();
  w.key("name"); w.value("resnet50");
  w.key("length"); w.value(8);
  w.end_object();
  w.key("gpus"); w.value(2);
  w.key("memory_gb"); w.value(memory_gb);
  w.end_object();
  return w.str() + "\n";
}

/// A deliberately slow request (~150 ms of planning): long chain, 4 GPUs,
/// full default grids. `length` varies the fingerprint.
std::string slow_frame(const std::string& id, int length) {
  json::Writer w;
  w.begin_object();
  w.key("id"); w.value(id);
  w.key("network");
  w.begin_object();
  w.key("name"); w.value("resnet50");
  w.key("length"); w.value(length);
  w.end_object();
  w.key("gpus"); w.value(4);
  w.key("memory_gb"); w.value(8);
  w.end_object();
  return w.str() + "\n";
}

std::string field(const std::string& response, const char* name) {
  const json::ParseResult parsed = json::parse(response);
  if (!parsed.ok()) return "<unparseable>";
  return parsed.value.string_or(name, "");
}

/// Everything from `"plan":` onward — the deterministic part of a response.
std::string plan_tail(const std::string& response) {
  const std::size_t pos = response.find("\"plan\":");
  return pos == std::string::npos ? std::string() : response.substr(pos);
}

struct Harness {
  explicit Harness(NetServerOptions options = {},
                   ServiceOptions service_options = {})
      : service(service_options), server(service, with_loopback(options)) {}

  static NetServerOptions with_loopback(NetServerOptions options) {
    options.host = "127.0.0.1";
    options.port = 0;
    options.dispatch_workers = 2;
    return options;
  }

  PlanService service;
  NetServer server;
};

TEST(ServeNet, MissThenHitMatchBatchModeServe) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  const std::string frame = fast_frame("t1");
  std::string miss_line, hit_line;
  ASSERT_TRUE(client.send(frame));
  ASSERT_TRUE(client.recv(miss_line));
  ASSERT_TRUE(client.send(frame));
  ASSERT_TRUE(client.recv(hit_line));

  EXPECT_EQ(field(miss_line, "id"), "t1");
  EXPECT_EQ(field(miss_line, "status"), "ok");
  EXPECT_EQ(field(miss_line, "cache"), "miss");
  EXPECT_EQ(field(hit_line, "status"), "ok");
  EXPECT_EQ(field(hit_line, "cache"), "hit");

  // The plan block must be bit-identical to batch-mode serve on a fresh
  // service answering the same request.
  const BatchParse parsed = parse_requests(frame.substr(0, frame.size() - 1));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.requests.size(), 1u);
  ASSERT_TRUE(parsed.requests[0].ok());
  PlanService direct;
  const std::string direct_line =
      response_to_json(direct.plan(*parsed.requests[0].request));
  ASSERT_FALSE(plan_tail(direct_line).empty());
  EXPECT_EQ(plan_tail(miss_line), plan_tail(direct_line));
  EXPECT_EQ(plan_tail(hit_line), plan_tail(direct_line));

  const NetServerStats stats = h.server.stats();
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.frames, 2);
  EXPECT_EQ(stats.responses, 2);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST(ServeNet, V2JsonProfileFrameMatchesV1TextBitForBit) {
  // The same profile as v1 text and as v2 JSON (both inline in
  // profile_text) through the TCP front-end: the plan blocks must be
  // bit-identical to each other and to batch-mode serve — the v2 format is
  // accepted everywhere v1 is, with identical results.
  const Chain chain = make_uniform_chain(6, ms(2), ms(4), MB, 8 * MB, MB);
  const auto frame = [&](const std::string& id, const std::string& profile) {
    json::Writer w;
    w.begin_object();
    w.key("id"); w.value(id);
    w.key("profile_text"); w.value(profile);
    w.key("gpus"); w.value(2);
    w.key("memory_gb"); w.value(8);
    w.end_object();
    return w.str() + "\n";
  };
  const std::string v1 = frame("v1", models::profile_to_string(chain));
  const std::string v2 = frame("v2", models::profile_to_json_string(chain));

  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());
  std::string v1_line, v2_line;
  ASSERT_TRUE(client.send(v1));
  ASSERT_TRUE(client.recv(v1_line));
  ASSERT_TRUE(client.send(v2));
  ASSERT_TRUE(client.recv(v2_line));

  EXPECT_EQ(field(v1_line, "status"), "ok");
  EXPECT_EQ(field(v2_line, "status"), "ok");
  ASSERT_FALSE(plan_tail(v1_line).empty());
  EXPECT_EQ(plan_tail(v2_line), plan_tail(v1_line));
  // The v2 request is a cache hit: identical canonical chain, identical
  // fingerprint.
  EXPECT_EQ(field(v2_line, "cache"), "hit");

  // Batch-mode serve on a fresh service agrees bit for bit.
  const BatchParse parsed = parse_requests(v1.substr(0, v1.size() - 1));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.requests[0].ok());
  PlanService direct;
  const std::string direct_line =
      response_to_json(direct.plan(*parsed.requests[0].request));
  EXPECT_EQ(plan_tail(v1_line), plan_tail(direct_line));
}

TEST(ServeNet, PipelinedResponsesArriveInRequestOrder) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  std::string burst;
  for (int i = 0; i < 6; ++i) {
    burst += fast_frame("seq" + std::to_string(i), 4.0 + i);
  }
  ASSERT_TRUE(client.send(burst));
  for (int i = 0; i < 6; ++i) {
    std::string line;
    ASSERT_TRUE(client.recv(line)) << "response " << i << " missing";
    EXPECT_EQ(field(line, "id"), "seq" + std::to_string(i));
  }
}

TEST(ServeNet, MalformedFrameGetsErrorAndConnectionSurvives) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  std::string line;
  ASSERT_TRUE(client.send("this is not json\n"));
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "status"), "error");

  // Duplicate keys are a protocol error too (strict parser).
  ASSERT_TRUE(client.send("{\"id\": \"d\", \"id\": \"d\"}\n"));
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "status"), "error");

  // The connection is still usable for a well-formed request.
  ASSERT_TRUE(client.send(fast_frame("after-error")));
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "id"), "after-error");
  EXPECT_EQ(field(line, "status"), "ok");

  EXPECT_EQ(h.server.stats().protocol_errors, 2);
}

TEST(ServeNet, OversizedFrameClosesConnection) {
  NetServerOptions options;
  options.max_frame_bytes = 1024;
  Harness h(options);
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.send(std::string(2048, 'x')));
  std::string line;
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "status"), "error");
  // After the error line the server closes: the next read sees EOF.
  EXPECT_FALSE(client.recv(line));
  EXPECT_EQ(h.server.stats().oversized, 1);
}

TEST(ServeNet, SlowClientByteByByteStillGetsServed) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  const std::string frame = fast_frame("drip");
  for (const char c : frame) {
    ASSERT_TRUE(client.send(std::string(1, c)));
    if (static_cast<unsigned char>(c) % 16 == 0) {
      std::this_thread::sleep_for(1ms);
    }
  }
  std::string line;
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "id"), "drip");
  EXPECT_EQ(field(line, "status"), "ok");
}

TEST(ServeNet, HalfCloseStillDeliversPendingResponse) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.send(fast_frame("half")));
  client.half_close();
  std::string line;
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "id"), "half");
  EXPECT_EQ(field(line, "status"), "ok");
  // Nothing more to serve: the server closes its side too.
  EXPECT_FALSE(client.recv(line));
}

TEST(ServeNet, TokenBucketShedsExcessRate) {
  NetServerOptions options;
  options.tokens_per_second = 1.0;  // refill is negligible within the test
  options.token_burst = 3.0;
  Harness h(options);
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  const std::string frame = fast_frame("rate");
  std::string burst;
  for (int i = 0; i < 10; ++i) burst += frame;
  ASSERT_TRUE(client.send(burst));

  int ok = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    std::string line;
    ASSERT_TRUE(client.recv(line));
    const std::string status = field(line, "status");
    if (status == "ok") ++ok;
    if (status == "rejected") ++rejected;
  }
  EXPECT_EQ(ok + rejected, 10);
  EXPECT_GE(ok, 1);        // the initial burst allowance
  EXPECT_GE(rejected, 6);  // everything past it, minus refill slack
  EXPECT_EQ(h.server.stats().shed_rate, rejected);
}

TEST(ServeNet, ServiceBacklogShedsByQueueDepth) {
  NetServerOptions options;
  options.shed_queue_depth = 1;
  ServiceOptions service_options;
  service_options.workers = 1;
  Harness h(options, service_options);
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  // A occupies the single worker (~150 ms), B queues behind it.
  ASSERT_TRUE(client.send(slow_frame("slow-a", 16)));
  ASSERT_TRUE(client.send(slow_frame("slow-b", 17)));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (h.service.queue_depth() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(h.service.queue_depth(), 1u) << "backlog never formed";

  // C arrives while the backlog stands: admission control sheds it.
  ASSERT_TRUE(client.send(fast_frame("shed-c")));

  std::string a, b, c;
  ASSERT_TRUE(client.recv(a));
  ASSERT_TRUE(client.recv(b));
  ASSERT_TRUE(client.recv(c));
  EXPECT_EQ(field(a, "id"), "slow-a");
  EXPECT_EQ(field(a, "status"), "ok");
  EXPECT_EQ(field(b, "id"), "slow-b");
  EXPECT_EQ(field(b, "status"), "ok");
  // Shed responses carry an empty id: admission control fires before the
  // frame is ever parsed, so position in the in-order stream correlates it.
  EXPECT_EQ(field(c, "id"), "");
  EXPECT_EQ(field(c, "status"), "rejected");
  EXPECT_EQ(h.server.stats().shed_depth, 1);
}

TEST(ServeNet, MultiClientHammerServesEveryRequest) {
  Harness h;
  const std::uint16_t port = h.server.port();

  // Warm the cache so the hammer is pure hit traffic.
  {
    Client warm(port);
    ASSERT_TRUE(warm.ok());
    std::string line;
    ASSERT_TRUE(warm.send(fast_frame("warm")));
    ASSERT_TRUE(warm.recv(line));
    ASSERT_EQ(field(line, "status"), "ok");
  }

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(port);
      if (!client.ok()) return;
      std::string line;
      for (int i = 0; i < kPerClient; ++i) {
        if (!client.send(fast_frame("h" + std::to_string(c)))) return;
        if (!client.recv(line)) return;
        if (field(line, "status") == "ok") {
          ++ok_counts[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[static_cast<std::size_t>(c)], kPerClient);
  }
  const NetServerStats stats = h.server.stats();
  EXPECT_EQ(stats.frames, 1 + kClients * kPerClient);
  EXPECT_EQ(stats.responses, 1 + kClients * kPerClient);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST(ServeNet, GracefulStopDeliversInFlightResponses) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  // A real planning run is in flight when stop() lands.
  ASSERT_TRUE(client.send(slow_frame("inflight", 16)));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (h.server.stats().frames < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  h.server.stop();

  std::string line;
  ASSERT_TRUE(client.recv(line)) << "in-flight response lost at shutdown";
  EXPECT_EQ(field(line, "id"), "inflight");
  EXPECT_EQ(field(line, "status"), "ok");
  EXPECT_FALSE(client.recv(line));  // drained, flushed, closed
}

TEST(ServeNet, EdgeTriggeredModeServesPipelinedTraffic) {
  NetServerOptions options;
  options.edge_triggered = true;
  Harness h(options);
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  std::string burst;
  for (int i = 0; i < 8; ++i) {
    burst += fast_frame("et" + std::to_string(i));
  }
  ASSERT_TRUE(client.send(burst));
  for (int i = 0; i < 8; ++i) {
    std::string line;
    ASSERT_TRUE(client.recv(line)) << "ET response " << i << " missing";
    EXPECT_EQ(field(line, "id"), "et" + std::to_string(i));
    EXPECT_EQ(field(line, "status"), "ok");
  }
}

// --- Request-scoped tracing and the admin endpoint ------------------------

/// Parse the echoed trace id (16 lowercase hex digits) back to its number.
std::uint64_t echoed_trace_id(const std::string& response) {
  const std::string hex = field(response, "trace_id");
  if (hex.size() != 16) return 0;
  return std::strtoull(hex.c_str(), nullptr, 16);
}

const obs::TraceEvent* find_span(const std::vector<obs::TraceEvent>& events,
                                 const char* name, std::uint64_t trace_id) {
  for (const obs::TraceEvent& event : events) {
    if (event.name != nullptr && std::string(name) == event.name &&
        event.trace_id == trace_id) {
      return &event;
    }
  }
  return nullptr;
}

/// One blocking admin-endpoint GET; returns the response body.
std::string admin_get(std::uint16_t port, const std::string& path) {
  madpipe::net::FdGuard fd = madpipe::net::connect_tcp("127.0.0.1", port);
  if (!fd.valid()) return {};
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!madpipe::net::write_all(fd.get(), request.data(), request.size())) {
    return {};
  }
  std::string out;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd.get(), buffer, sizeof(buffer))) > 0) {
    out.append(buffer, static_cast<std::size_t>(n));
  }
  const std::size_t sep = out.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : out.substr(sep + 4);
}

TEST(ServeNet, TraceIdPropagatesAcrossThreadsOntoEverySpan) {
  obs::install_trace();
  {
    Harness h;
    Client client(h.server.port());
    ASSERT_TRUE(client.ok());

    std::string line;
    ASSERT_TRUE(client.send(fast_frame("traced")));
    ASSERT_TRUE(client.recv(line));
    ASSERT_EQ(field(line, "status"), "ok");
    ASSERT_EQ(field(line, "cache"), "miss");
    const std::uint64_t id = echoed_trace_id(line);
    ASSERT_NE(id, 0u) << line;

    // The request crossed three threads — the event loop's dispatch worker
    // (admission + cache probe), the queue, a planner worker — and every
    // phase span carries the id echoed in the response.
    const std::vector<obs::TraceEvent> events = obs::drain_trace();
    const obs::TraceEvent* submit = find_span(events, "serve_submit", id);
    const obs::TraceEvent* wait = find_span(events, "queue_wait", id);
    const obs::TraceEvent* plan = find_span(events, "serve_plan", id);
    ASSERT_NE(submit, nullptr);
    ASSERT_NE(wait, nullptr);
    ASSERT_NE(plan, nullptr);
    // The planner ran on a different thread than admission, yet the tree
    // reassembles by id alone.
    EXPECT_NE(submit->tid, plan->tid);
    EXPECT_GE(plan->start_ns, submit->start_ns);
  }
  obs::uninstall_trace();
}

TEST(ServeNet, EchoedTraceIdIsCacheKeyInert) {
  // Telemetry fully disarmed: ids are still assigned and echoed, and they
  // must not leak into the cache key — a hit and its original miss return
  // bit-identical plan blocks under different trace ids.
  ASSERT_FALSE(obs::trace_enabled());
  ASSERT_FALSE(obs::tail_enabled());
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  const std::string frame = fast_frame("inert");
  std::string miss_line, hit_line;
  ASSERT_TRUE(client.send(frame));
  ASSERT_TRUE(client.recv(miss_line));
  ASSERT_TRUE(client.send(frame));
  ASSERT_TRUE(client.recv(hit_line));

  EXPECT_EQ(field(miss_line, "cache"), "miss");
  EXPECT_EQ(field(hit_line, "cache"), "hit");
  const std::uint64_t miss_id = echoed_trace_id(miss_line);
  const std::uint64_t hit_id = echoed_trace_id(hit_line);
  ASSERT_NE(miss_id, 0u);
  ASSERT_NE(hit_id, 0u);
  EXPECT_NE(miss_id, hit_id);
  ASSERT_FALSE(plan_tail(miss_line).empty());
  EXPECT_EQ(plan_tail(hit_line), plan_tail(miss_line));
}

TEST(ServeNet, PlansAreBitIdenticalWithTelemetryArmedVsDisarmed) {
  const std::string frame = fast_frame("armed");

  // Disarmed baseline.
  std::string baseline;
  {
    Harness h;
    Client client(h.server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send(frame));
    ASSERT_TRUE(client.recv(baseline));
  }

  // Rings and tail sampler both armed: same plan, bit for bit.
  obs::install_trace();
  obs::arm_tail_sampling({});
  std::string armed;
  {
    Harness h;
    Client client(h.server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send(frame));
    ASSERT_TRUE(client.recv(armed));
  }
  obs::disarm_tail_sampling();
  obs::uninstall_trace();

  ASSERT_EQ(field(baseline, "status"), "ok");
  ASSERT_EQ(field(armed, "status"), "ok");
  ASSERT_FALSE(plan_tail(baseline).empty());
  EXPECT_EQ(plan_tail(armed), plan_tail(baseline));
}

TEST(ServeNet, SlowestRequestOfAMixedRunAppearsInSlowWithPhases) {
  obs::arm_tail_sampling({});
  {
    Harness h;
    AdminServerOptions admin_options;
    admin_options.host = "127.0.0.1";
    admin_options.port = 0;
    admin_options.draining = [&h] { return h.server.draining(); };
    AdminServer admin(admin_options);

    Client client(h.server.port());
    ASSERT_TRUE(client.ok());

    // Mixed traffic: fast misses, fast hits, and one genuinely slow miss.
    std::string line;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(client.send(fast_frame("fast" + std::to_string(i),
                                         4.0 + i)));
      ASSERT_TRUE(client.recv(line));
      ASSERT_EQ(field(line, "status"), "ok");
    }
    ASSERT_TRUE(client.send(fast_frame("fast0-again", 4.0)));
    ASSERT_TRUE(client.recv(line));
    ASSERT_EQ(field(line, "cache"), "hit");

    std::string slow_line;
    ASSERT_TRUE(client.send(slow_frame("the-slow-one", 40)));
    ASSERT_TRUE(client.recv(slow_line));
    ASSERT_EQ(field(slow_line, "status"), "ok");
    ASSERT_EQ(field(slow_line, "cache"), "miss");
    const std::uint64_t slow_id = echoed_trace_id(slow_line);
    ASSERT_NE(slow_id, 0u);

    // The server is live mid-run: /healthz says ok, /metrics has the serve
    // gauges, and /slow ranks the slow request first with its trace id and
    // per-phase breakdown.
    EXPECT_EQ(admin_get(admin.port(), "/healthz"), "ok\n");
    const std::string metrics = admin_get(admin.port(), "/metrics");
    EXPECT_NE(metrics.find("madpipe_serve_queue_depth"), std::string::npos);
    EXPECT_NE(metrics.find("madpipe_serve_hit_rate"), std::string::npos);

    const json::ParseResult parsed =
        json::parse(admin_get(admin.port(), "/slow"));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.value.string_or("schema", ""), "madpipe-admin-v1");
    const json::Value* slow = parsed.value.find("slow");
    ASSERT_NE(slow, nullptr);
    ASSERT_FALSE(slow->items().empty());
    const json::Value& top = slow->items()[0];
    EXPECT_EQ(top.string_or("trace_id", ""), obs::format_trace_id(slow_id));
    EXPECT_EQ(top.string_or("id", ""), "the-slow-one");
    EXPECT_EQ(top.string_or("cache", ""), "miss");
    const json::Value* phases = top.find("phases");
    ASSERT_NE(phases, nullptr);
    EXPECT_GT(phases->number_or("plan_seconds", -1.0), 0.0);
    EXPECT_GE(phases->number_or("admission_seconds", -1.0), 0.0);
    EXPECT_GE(phases->number_or("queue_seconds", -1.0), 0.0);
    // The retained span tree includes the planner phase itself.
    const json::Value* spans = top.find("spans");
    ASSERT_NE(spans, nullptr);
    bool has_plan_span = false;
    for (const json::Value& span : spans->items()) {
      if (span.string_or("name", "") == "serve_plan") has_plan_span = true;
    }
    EXPECT_TRUE(has_plan_span);

    // Draining flips /healthz before the front-end finishes flushing.
    h.server.stop();
    const std::string draining = admin_get(admin.port(), "/healthz");
    EXPECT_EQ(draining, "draining\n");
  }
  obs::disarm_tail_sampling();
}

}  // namespace
}  // namespace madpipe::serve::net
