// NetServer loopback integration tests: the TCP front-end must speak
// newline-delimited madpipe-serve-v1 faithfully (miss/hit round trips bit
// identical to batch-mode serve, responses in request order), survive
// malformed frames, slow writers and half-closed peers, shed load per its
// admission-control knobs, and shut down gracefully with every in-flight
// response delivered.
#include "serve/net/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "models/profile_io.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/net.hpp"

namespace madpipe::serve::net {
namespace {

using namespace std::chrono_literals;

/// One blocking loopback client speaking the newline framing.
class Client {
 public:
  explicit Client(std::uint16_t port)
      : fd_(madpipe::net::connect_tcp("127.0.0.1", port)) {}

  bool ok() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  bool send(const std::string& bytes) {
    return madpipe::net::write_all(fd_.get(), bytes.data(), bytes.size());
  }

  bool recv(std::string& line) {
    line.clear();
    return madpipe::net::read_line(fd_.get(), line, carry_);
  }

  /// SHUT_WR: we promise to send nothing further; reads stay open.
  void half_close() { ::shutdown(fd_.get(), SHUT_WR); }

 private:
  madpipe::net::FdGuard fd_;
  std::string carry_;
};

/// A cheap request (resnet50/8 on 2 GPUs plans in well under a millisecond)
/// with an id and a distinguishing memory size.
std::string fast_frame(const std::string& id, double memory_gb = 8.0) {
  json::Writer w;
  w.begin_object();
  w.key("id"); w.value(id);
  w.key("network");
  w.begin_object();
  w.key("name"); w.value("resnet50");
  w.key("length"); w.value(8);
  w.end_object();
  w.key("gpus"); w.value(2);
  w.key("memory_gb"); w.value(memory_gb);
  w.end_object();
  return w.str() + "\n";
}

/// A deliberately slow request (~150 ms of planning): long chain, 4 GPUs,
/// full default grids. `length` varies the fingerprint.
std::string slow_frame(const std::string& id, int length) {
  json::Writer w;
  w.begin_object();
  w.key("id"); w.value(id);
  w.key("network");
  w.begin_object();
  w.key("name"); w.value("resnet50");
  w.key("length"); w.value(length);
  w.end_object();
  w.key("gpus"); w.value(4);
  w.key("memory_gb"); w.value(8);
  w.end_object();
  return w.str() + "\n";
}

std::string field(const std::string& response, const char* name) {
  const json::ParseResult parsed = json::parse(response);
  if (!parsed.ok()) return "<unparseable>";
  return parsed.value.string_or(name, "");
}

/// Everything from `"plan":` onward — the deterministic part of a response.
std::string plan_tail(const std::string& response) {
  const std::size_t pos = response.find("\"plan\":");
  return pos == std::string::npos ? std::string() : response.substr(pos);
}

struct Harness {
  explicit Harness(NetServerOptions options = {},
                   ServiceOptions service_options = {})
      : service(service_options), server(service, with_loopback(options)) {}

  static NetServerOptions with_loopback(NetServerOptions options) {
    options.host = "127.0.0.1";
    options.port = 0;
    options.dispatch_workers = 2;
    return options;
  }

  PlanService service;
  NetServer server;
};

TEST(ServeNet, MissThenHitMatchBatchModeServe) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  const std::string frame = fast_frame("t1");
  std::string miss_line, hit_line;
  ASSERT_TRUE(client.send(frame));
  ASSERT_TRUE(client.recv(miss_line));
  ASSERT_TRUE(client.send(frame));
  ASSERT_TRUE(client.recv(hit_line));

  EXPECT_EQ(field(miss_line, "id"), "t1");
  EXPECT_EQ(field(miss_line, "status"), "ok");
  EXPECT_EQ(field(miss_line, "cache"), "miss");
  EXPECT_EQ(field(hit_line, "status"), "ok");
  EXPECT_EQ(field(hit_line, "cache"), "hit");

  // The plan block must be bit-identical to batch-mode serve on a fresh
  // service answering the same request.
  const BatchParse parsed = parse_requests(frame.substr(0, frame.size() - 1));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.requests.size(), 1u);
  ASSERT_TRUE(parsed.requests[0].ok());
  PlanService direct;
  const std::string direct_line =
      response_to_json(direct.plan(*parsed.requests[0].request));
  ASSERT_FALSE(plan_tail(direct_line).empty());
  EXPECT_EQ(plan_tail(miss_line), plan_tail(direct_line));
  EXPECT_EQ(plan_tail(hit_line), plan_tail(direct_line));

  const NetServerStats stats = h.server.stats();
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.frames, 2);
  EXPECT_EQ(stats.responses, 2);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST(ServeNet, V2JsonProfileFrameMatchesV1TextBitForBit) {
  // The same profile as v1 text and as v2 JSON (both inline in
  // profile_text) through the TCP front-end: the plan blocks must be
  // bit-identical to each other and to batch-mode serve — the v2 format is
  // accepted everywhere v1 is, with identical results.
  const Chain chain = make_uniform_chain(6, ms(2), ms(4), MB, 8 * MB, MB);
  const auto frame = [&](const std::string& id, const std::string& profile) {
    json::Writer w;
    w.begin_object();
    w.key("id"); w.value(id);
    w.key("profile_text"); w.value(profile);
    w.key("gpus"); w.value(2);
    w.key("memory_gb"); w.value(8);
    w.end_object();
    return w.str() + "\n";
  };
  const std::string v1 = frame("v1", models::profile_to_string(chain));
  const std::string v2 = frame("v2", models::profile_to_json_string(chain));

  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());
  std::string v1_line, v2_line;
  ASSERT_TRUE(client.send(v1));
  ASSERT_TRUE(client.recv(v1_line));
  ASSERT_TRUE(client.send(v2));
  ASSERT_TRUE(client.recv(v2_line));

  EXPECT_EQ(field(v1_line, "status"), "ok");
  EXPECT_EQ(field(v2_line, "status"), "ok");
  ASSERT_FALSE(plan_tail(v1_line).empty());
  EXPECT_EQ(plan_tail(v2_line), plan_tail(v1_line));
  // The v2 request is a cache hit: identical canonical chain, identical
  // fingerprint.
  EXPECT_EQ(field(v2_line, "cache"), "hit");

  // Batch-mode serve on a fresh service agrees bit for bit.
  const BatchParse parsed = parse_requests(v1.substr(0, v1.size() - 1));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.requests[0].ok());
  PlanService direct;
  const std::string direct_line =
      response_to_json(direct.plan(*parsed.requests[0].request));
  EXPECT_EQ(plan_tail(v1_line), plan_tail(direct_line));
}

TEST(ServeNet, PipelinedResponsesArriveInRequestOrder) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  std::string burst;
  for (int i = 0; i < 6; ++i) {
    burst += fast_frame("seq" + std::to_string(i), 4.0 + i);
  }
  ASSERT_TRUE(client.send(burst));
  for (int i = 0; i < 6; ++i) {
    std::string line;
    ASSERT_TRUE(client.recv(line)) << "response " << i << " missing";
    EXPECT_EQ(field(line, "id"), "seq" + std::to_string(i));
  }
}

TEST(ServeNet, MalformedFrameGetsErrorAndConnectionSurvives) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  std::string line;
  ASSERT_TRUE(client.send("this is not json\n"));
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "status"), "error");

  // Duplicate keys are a protocol error too (strict parser).
  ASSERT_TRUE(client.send("{\"id\": \"d\", \"id\": \"d\"}\n"));
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "status"), "error");

  // The connection is still usable for a well-formed request.
  ASSERT_TRUE(client.send(fast_frame("after-error")));
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "id"), "after-error");
  EXPECT_EQ(field(line, "status"), "ok");

  EXPECT_EQ(h.server.stats().protocol_errors, 2);
}

TEST(ServeNet, OversizedFrameClosesConnection) {
  NetServerOptions options;
  options.max_frame_bytes = 1024;
  Harness h(options);
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.send(std::string(2048, 'x')));
  std::string line;
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "status"), "error");
  // After the error line the server closes: the next read sees EOF.
  EXPECT_FALSE(client.recv(line));
  EXPECT_EQ(h.server.stats().oversized, 1);
}

TEST(ServeNet, SlowClientByteByByteStillGetsServed) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  const std::string frame = fast_frame("drip");
  for (const char c : frame) {
    ASSERT_TRUE(client.send(std::string(1, c)));
    if (static_cast<unsigned char>(c) % 16 == 0) {
      std::this_thread::sleep_for(1ms);
    }
  }
  std::string line;
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "id"), "drip");
  EXPECT_EQ(field(line, "status"), "ok");
}

TEST(ServeNet, HalfCloseStillDeliversPendingResponse) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.send(fast_frame("half")));
  client.half_close();
  std::string line;
  ASSERT_TRUE(client.recv(line));
  EXPECT_EQ(field(line, "id"), "half");
  EXPECT_EQ(field(line, "status"), "ok");
  // Nothing more to serve: the server closes its side too.
  EXPECT_FALSE(client.recv(line));
}

TEST(ServeNet, TokenBucketShedsExcessRate) {
  NetServerOptions options;
  options.tokens_per_second = 1.0;  // refill is negligible within the test
  options.token_burst = 3.0;
  Harness h(options);
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  const std::string frame = fast_frame("rate");
  std::string burst;
  for (int i = 0; i < 10; ++i) burst += frame;
  ASSERT_TRUE(client.send(burst));

  int ok = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    std::string line;
    ASSERT_TRUE(client.recv(line));
    const std::string status = field(line, "status");
    if (status == "ok") ++ok;
    if (status == "rejected") ++rejected;
  }
  EXPECT_EQ(ok + rejected, 10);
  EXPECT_GE(ok, 1);        // the initial burst allowance
  EXPECT_GE(rejected, 6);  // everything past it, minus refill slack
  EXPECT_EQ(h.server.stats().shed_rate, rejected);
}

TEST(ServeNet, ServiceBacklogShedsByQueueDepth) {
  NetServerOptions options;
  options.shed_queue_depth = 1;
  ServiceOptions service_options;
  service_options.workers = 1;
  Harness h(options, service_options);
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  // A occupies the single worker (~150 ms), B queues behind it.
  ASSERT_TRUE(client.send(slow_frame("slow-a", 16)));
  ASSERT_TRUE(client.send(slow_frame("slow-b", 17)));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (h.service.queue_depth() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(h.service.queue_depth(), 1u) << "backlog never formed";

  // C arrives while the backlog stands: admission control sheds it.
  ASSERT_TRUE(client.send(fast_frame("shed-c")));

  std::string a, b, c;
  ASSERT_TRUE(client.recv(a));
  ASSERT_TRUE(client.recv(b));
  ASSERT_TRUE(client.recv(c));
  EXPECT_EQ(field(a, "id"), "slow-a");
  EXPECT_EQ(field(a, "status"), "ok");
  EXPECT_EQ(field(b, "id"), "slow-b");
  EXPECT_EQ(field(b, "status"), "ok");
  // Shed responses carry an empty id: admission control fires before the
  // frame is ever parsed, so position in the in-order stream correlates it.
  EXPECT_EQ(field(c, "id"), "");
  EXPECT_EQ(field(c, "status"), "rejected");
  EXPECT_EQ(h.server.stats().shed_depth, 1);
}

TEST(ServeNet, MultiClientHammerServesEveryRequest) {
  Harness h;
  const std::uint16_t port = h.server.port();

  // Warm the cache so the hammer is pure hit traffic.
  {
    Client warm(port);
    ASSERT_TRUE(warm.ok());
    std::string line;
    ASSERT_TRUE(warm.send(fast_frame("warm")));
    ASSERT_TRUE(warm.recv(line));
    ASSERT_EQ(field(line, "status"), "ok");
  }

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(port);
      if (!client.ok()) return;
      std::string line;
      for (int i = 0; i < kPerClient; ++i) {
        if (!client.send(fast_frame("h" + std::to_string(c)))) return;
        if (!client.recv(line)) return;
        if (field(line, "status") == "ok") {
          ++ok_counts[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[static_cast<std::size_t>(c)], kPerClient);
  }
  const NetServerStats stats = h.server.stats();
  EXPECT_EQ(stats.frames, 1 + kClients * kPerClient);
  EXPECT_EQ(stats.responses, 1 + kClients * kPerClient);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST(ServeNet, GracefulStopDeliversInFlightResponses) {
  Harness h;
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  // A real planning run is in flight when stop() lands.
  ASSERT_TRUE(client.send(slow_frame("inflight", 16)));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (h.server.stats().frames < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  h.server.stop();

  std::string line;
  ASSERT_TRUE(client.recv(line)) << "in-flight response lost at shutdown";
  EXPECT_EQ(field(line, "id"), "inflight");
  EXPECT_EQ(field(line, "status"), "ok");
  EXPECT_FALSE(client.recv(line));  // drained, flushed, closed
}

TEST(ServeNet, EdgeTriggeredModeServesPipelinedTraffic) {
  NetServerOptions options;
  options.edge_triggered = true;
  Harness h(options);
  Client client(h.server.port());
  ASSERT_TRUE(client.ok());

  std::string burst;
  for (int i = 0; i < 8; ++i) {
    burst += fast_frame("et" + std::to_string(i));
  }
  ASSERT_TRUE(client.send(burst));
  for (int i = 0; i < 8; ++i) {
    std::string line;
    ASSERT_TRUE(client.recv(line)) << "ET response " << i << " missing";
    EXPECT_EQ(field(line, "id"), "et" + std::to_string(i));
    EXPECT_EQ(field(line, "status"), "ok");
  }
}

}  // namespace
}  // namespace madpipe::serve::net
