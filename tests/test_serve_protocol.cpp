// Serve protocol tests: strict request parsing (table-driven bad inputs),
// batch shapes, and response serialization.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <set>

#include "models/profile_io.hpp"

namespace madpipe::serve {
namespace {

std::string tiny_profile() {
  const Chain chain = make_uniform_chain(4, ms(2), ms(4), MB, 8 * MB, MB);
  return models::profile_to_string(chain);
}

/// Inline a profile as a JSON string literal (the writer escapes it).
std::string profile_json_field() {
  json::Writer w;
  w.begin_object();
  w.key("p");
  w.value(tiny_profile());
  w.end_object();
  const std::string wrapped = w.str();
  // strip {"p": ... } down to the value literal
  return wrapped.substr(5, wrapped.size() - 6);
}

TEST(ServeProtocol, ParsesMinimalValidRequest) {
  const std::string text = std::string("{\"id\":\"r1\",\"profile_text\":") +
                           profile_json_field() +
                           ",\"gpus\":2,\"memory_gb\":4}";
  const BatchParse batch = parse_requests(text);
  ASSERT_TRUE(batch.ok()) << batch.error;
  ASSERT_EQ(batch.requests.size(), 1u);
  const RequestParse& parse = batch.requests[0];
  ASSERT_TRUE(parse.ok()) << parse.error;
  EXPECT_EQ(parse.id, "r1");
  EXPECT_EQ(parse.request->platform.processors, 2);
  EXPECT_EQ(parse.request->platform.memory_per_processor, 4 * GB);
  EXPECT_EQ(parse.request->chain.length(), 4);
  EXPECT_EQ(parse.request->planner, PlannerKind::MadPipe);
}

TEST(ServeProtocol, ParsesNetworkSourceAndOptions) {
  const std::string text =
      R"({"requests":[{"id":"n","network":{"name":"resnet50","length":8},
           "gpus":4,"memory_gb":8,"bandwidth_gbs":25,
           "planner":"madpipe-contig","deadline_ms":150,
           "options":{"iterations":6,"schedule_best_of":2}}]})";
  const BatchParse batch = parse_requests(text);
  ASSERT_TRUE(batch.ok()) << batch.error;
  ASSERT_EQ(batch.requests.size(), 1u);
  const RequestParse& parse = batch.requests[0];
  ASSERT_TRUE(parse.ok()) << parse.error;
  EXPECT_EQ(parse.request->chain.length(), 8);
  EXPECT_EQ(parse.request->planner, PlannerKind::MadPipeContiguous);
  EXPECT_DOUBLE_EQ(parse.request->deadline_seconds, 0.150);
  EXPECT_EQ(parse.request->options.phase1.iterations, 6);
  EXPECT_EQ(parse.request->options.schedule_best_of, 2);
  EXPECT_DOUBLE_EQ(parse.request->platform.bandwidth, 25 * GB);
}

TEST(ServeProtocol, ParsesExplainAndTimingsFlags) {
  const std::string text =
      R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":4,
           "options":{"timings":true,"explain":true}})";
  const BatchParse batch = parse_requests(text);
  ASSERT_TRUE(batch.ok()) << batch.error;
  const RequestParse& parse = batch.requests[0];
  ASSERT_TRUE(parse.ok()) << parse.error;
  EXPECT_TRUE(parse.request->report_timings);
  EXPECT_TRUE(parse.request->report_explain);

  // Both default to off.
  const std::string minimal =
      R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":4})";
  const BatchParse defaults = parse_requests(minimal);
  ASSERT_TRUE(defaults.requests[0].ok());
  EXPECT_FALSE(defaults.requests[0].request->report_timings);
  EXPECT_FALSE(defaults.requests[0].request->report_explain);
}

TEST(ServeProtocol, V2JsonProfileTextParsesBitIdenticalToV1) {
  // The same chain serialized as v1 text and as v2 JSON, both carried in
  // profile_text: version auto-detection must hand the planner bit-identical
  // chains, so every serve entry point accepts either format.
  const Chain chain = make_uniform_chain(4, ms(2), ms(4), MB, 8 * MB, MB);
  for (const std::string& profile :
       {models::profile_to_string(chain),
        models::profile_to_json_string(chain)}) {
    json::Writer w;
    w.begin_object();
    w.key("profile_text");
    w.value(profile);
    w.key("gpus");
    w.value(2);
    w.key("memory_gb");
    w.value(4);
    w.end_object();
    const BatchParse batch = parse_requests(w.str());
    ASSERT_TRUE(batch.ok()) << batch.error;
    ASSERT_EQ(batch.requests.size(), 1u);
    ASSERT_TRUE(batch.requests[0].ok()) << batch.requests[0].error;
    // Canonicalization may drop names but must keep numbers bit-exact.
    const Chain& parsed = batch.requests[0].request->chain;
    ASSERT_EQ(parsed.length(), chain.length());
    EXPECT_EQ(parsed.activation(0), chain.activation(0));
    for (int l = 1; l <= chain.length(); ++l) {
      EXPECT_EQ(parsed.forward_time(l), chain.forward_time(l)) << l;
      EXPECT_EQ(parsed.backward_time(l), chain.backward_time(l)) << l;
      EXPECT_EQ(parsed.weight(l), chain.weight(l)) << l;
      EXPECT_EQ(parsed.activation(l), chain.activation(l)) << l;
    }
  }
}

TEST(ServeProtocol, BareArrayAndSingleObjectShapes) {
  const std::string single = std::string("{\"profile_text\":") +
                             profile_json_field() +
                             ",\"gpus\":2,\"memory_gb\":4}";
  EXPECT_EQ(parse_requests(single).requests.size(), 1u);
  const std::string array = "[" + single + "," + single + "]";
  EXPECT_EQ(parse_requests(array).requests.size(), 2u);
}

struct BadRequestCase {
  const char* name;
  const char* json;
  const char* error_fragment;
};

TEST(ServeProtocol, TableOfBadRequests) {
  const BadRequestCase kCases[] = {
      {"not json", "nope", "expected"},
      {"not object or array", "42", "must be an object or array"},
      {"missing source", R"({"gpus":2,"memory_gb":4})", "exactly one of"},
      {"two sources",
       R"({"profile_text":"x","network":{"name":"resnet50"},"gpus":2,"memory_gb":4})",
       "exactly one of"},
      {"unknown field",
       R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":4,"bogus":1})",
       "unknown request field 'bogus'"},
      {"unknown network field",
       R"({"network":{"name":"resnet50","qqq":1},"gpus":2,"memory_gb":4})",
       "unknown network field 'qqq'"},
      {"unknown network name",
       R"({"network":{"name":"vgg"},"gpus":2,"memory_gb":4})",
       "network build failed"},
      {"bad profile text",
       R"({"profile_text":"madpipe-profile bad","gpus":2,"memory_gb":4})",
       "profile_text"},
      {"missing gpus",
       R"({"network":{"name":"resnet50"},"memory_gb":4})", "gpus"},
      {"fractional gpus",
       R"({"network":{"name":"resnet50"},"gpus":2.5,"memory_gb":4})", "gpus"},
      {"negative memory",
       R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":-1})",
       "memory_gb"},
      {"zero bandwidth",
       R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":4,"bandwidth_gbs":0})",
       "bandwidth_gbs"},
      {"unknown planner",
       R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":4,"planner":"pipedream2"})",
       "unknown planner"},
      {"negative deadline",
       R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":4,"deadline_ms":-5})",
       "deadline_ms"},
      {"bad option",
       R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":4,"options":{"iterations":0}})",
       "iterations"},
      {"unknown option",
       R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":4,"options":{"engine":1}})",
       "unknown options field"},
      {"explain wrong type",
       R"({"network":{"name":"resnet50"},"gpus":2,"memory_gb":4,"options":{"explain":1}})",
       "options.explain must be a boolean"},
      {"id wrong type",
       R"({"id":7,"network":{"name":"resnet50"},"gpus":2,"memory_gb":4})",
       "id must be a string"},
  };
  for (const BadRequestCase& test_case : kCases) {
    const BatchParse batch = parse_requests(test_case.json);
    std::string error = batch.error;
    if (batch.ok()) {
      ASSERT_EQ(batch.requests.size(), 1u) << test_case.name;
      EXPECT_FALSE(batch.requests[0].ok()) << test_case.name;
      error = batch.requests[0].error;
    }
    EXPECT_NE(error.find(test_case.error_fragment), std::string::npos)
        << test_case.name << ": got '" << error << "'";
  }
}

TEST(ServeProtocol, BadRequestInBatchDoesNotPoisonNeighbours) {
  const std::string text = std::string("{\"requests\":[") +
                           R"({"id":"bad","gpus":2,"memory_gb":4},)" +
                           "{\"id\":\"good\",\"profile_text\":" +
                           profile_json_field() +
                           ",\"gpus\":2,\"memory_gb\":4}]}";
  const BatchParse batch = parse_requests(text);
  ASSERT_TRUE(batch.ok()) << batch.error;
  ASSERT_EQ(batch.requests.size(), 2u);
  EXPECT_FALSE(batch.requests[0].ok());
  EXPECT_EQ(batch.requests[0].id, "bad");  // id echoed even on failure
  EXPECT_TRUE(batch.requests[1].ok()) << batch.requests[1].error;
}

TEST(ServeProtocol, ResponseSerializationRoundTrips) {
  PlanResponse response = error_response("r9", "boom");
  response.latency_seconds = 0.002;
  const std::string text = response_to_json(response);
  const json::ParseResult parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("id", ""), "r9");
  EXPECT_EQ(parsed.value.string_or("status", ""), "error");
  EXPECT_EQ(parsed.value.string_or("cache", ""), "none");
  EXPECT_EQ(parsed.value.string_or("error", ""), "boom");
  EXPECT_DOUBLE_EQ(parsed.value.number_or("latency_ms", 0.0), 2.0);
}

TEST(ServeProtocol, ResponseCarriesExplainBlockWhenPresent) {
  PlanResponse response = error_response("rx", "boom");
  report::ExplainSummary summary;
  summary.period = 0.25;
  summary.critical_resource = "gpu1";
  summary.critical_utilization = 0.75;
  summary.bubble_fraction = 0.25;
  summary.mean_gpu_utilization = 0.5;
  summary.memory_peak_bytes = 1024.0;
  summary.memory_headroom_bytes = 512.0;
  summary.binding_gpu = 1;
  summary.binding_term = report::MemoryTerm::Activations;
  response.explain = summary;
  const json::ParseResult parsed = json::parse(response_to_json(response));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const json::Value* block = parsed.value.find("explain");
  ASSERT_NE(block, nullptr);
  EXPECT_DOUBLE_EQ(block->number_or("period", 0.0), 0.25);
  EXPECT_EQ(block->string_or("critical_resource", ""), "gpu1");
  EXPECT_DOUBLE_EQ(block->number_or("critical_utilization", 0.0), 0.75);
  EXPECT_DOUBLE_EQ(block->number_or("bubble_fraction", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(block->number_or("memory_peak_bytes", 0.0), 1024.0);
  EXPECT_DOUBLE_EQ(block->number_or("memory_headroom_bytes", 0.0), 512.0);
  EXPECT_DOUBLE_EQ(block->number_or("binding_gpu", -1.0), 1.0);
  EXPECT_EQ(block->string_or("binding_term", ""), "activations");

  // No summary attached → no block in the document.
  const json::ParseResult bare =
      json::parse(response_to_json(error_response("ry", "boom")));
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value.find("explain"), nullptr);
}

TEST(ServeProtocol, BatchDocumentCarriesSchemaAndStats) {
  const std::vector<PlanResponse> responses = {error_response("a", "x")};
  ServeStats stats;
  stats.requests = 5;
  const std::string text = batch_to_json(responses, stats);
  const json::ParseResult parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("schema", ""), kServeSchema);
  const json::Value* list = parsed.value.find("responses");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->items().size(), 1u);
  const json::Value* stats_value = parsed.value.find("stats");
  ASSERT_NE(stats_value, nullptr);
  EXPECT_DOUBLE_EQ(stats_value->number_or("requests", 0.0), 5.0);
}

TEST(ServeProtocol, EveryResponseStatusRoundTripsThroughTheSerializer) {
  // Table-driven over the WHOLE enum (incl. Shutdown, added with the TCP
  // front-end): each status must serialize to its distinct wire name and
  // survive a JSON round-trip. A new enumerator without a row here — or
  // two enumerators sharing a wire name — fails loudly.
  struct Row {
    ResponseStatus status;
    const char* wire;
  };
  const std::vector<Row> table = {
      {ResponseStatus::Ok, "ok"},
      {ResponseStatus::Infeasible, "infeasible"},
      {ResponseStatus::Rejected, "rejected"},
      {ResponseStatus::Error, "error"},
      {ResponseStatus::Shutdown, "shutdown"},
  };
  std::set<std::string> seen;
  for (const Row& row : table) {
    EXPECT_STREQ(to_string(row.status), row.wire);
    EXPECT_TRUE(seen.insert(row.wire).second)
        << "duplicate wire name " << row.wire;
    PlanResponse response;
    response.id = "status-probe";
    response.status = row.status;
    response.error = "e";
    const json::ParseResult parsed = json::parse(response_to_json(response));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.value.string_or("status", ""), row.wire);
  }
  // If the enum grows, the table must grow with it: probe one past the
  // last known enumerator — to_string must still return a printable
  // sentinel rather than walking off the switch.
  EXPECT_EQ(table.size(), 5u);
  EXPECT_STREQ(to_string(static_cast<ResponseStatus>(table.size())),
               "unknown");
}

}  // namespace
}  // namespace madpipe::serve
