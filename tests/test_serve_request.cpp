// Property tests for the canonical request keys of the plan-serving
// subsystem: exact power-of-two rescales of a profile must share one cache
// key (and one plan, after denormalization), anything else must not.
#include "serve/request.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "madpipe/planner.hpp"

namespace madpipe::serve {
namespace {

/// A deliberately heterogeneous chain so rescale bugs can't hide behind
/// uniformity.
Chain ragged_chain(double time_factor = 1.0, double byte_factor = 1.0,
                   const std::string& name = "ragged") {
  std::vector<Layer> layers;
  for (int l = 1; l <= 8; ++l) {
    Layer layer;
    layer.name = name + "_l" + std::to_string(l);
    layer.forward_time = ms(1.0 + 0.37 * l) * time_factor;
    layer.backward_time = ms(2.0 + 0.61 * l) * time_factor;
    layer.weight_bytes = (3.0 + l) * MB * byte_factor;
    layer.output_bytes = (40.0 + 7.0 * l) * MB * byte_factor;
    layer.scratch_bytes = MB * byte_factor;
    layers.push_back(layer);
  }
  return Chain(name, 25 * MB * byte_factor, std::move(layers));
}

PlanRequest make_request(double time_factor = 1.0, double byte_factor = 1.0,
                         const std::string& name = "ragged") {
  return PlanRequest{"test",
                     ragged_chain(time_factor, byte_factor, name),
                     Platform{4, 2 * GB * byte_factor,
                              12 * GB * byte_factor / time_factor},
                     PlannerKind::MadPipe,
                     MadPipeOptions{},
                     0.0};
}

TEST(ServeRequest, CanonicalizationIsDeterministic) {
  const CanonicalRequest a = canonicalize(make_request());
  const CanonicalRequest b = canonicalize(make_request());
  EXPECT_TRUE(a.normalized);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.key, b.key);
}

TEST(ServeRequest, Pow2TimeRescaleSharesKey) {
  const CanonicalRequest base = canonicalize(make_request());
  for (const double factor : {2.0, 4.0, 0.5, 1024.0, 1.0 / 4096.0}) {
    const CanonicalRequest scaled = canonicalize(make_request(factor, 1.0));
    EXPECT_TRUE(scaled.normalized) << factor;
    EXPECT_EQ(scaled.fingerprint, base.fingerprint) << factor;
    EXPECT_EQ(scaled.key, base.key) << factor;
    EXPECT_EQ(scaled.time_unit, base.time_unit * factor) << factor;
  }
}

TEST(ServeRequest, Pow2ByteRescaleSharesKey) {
  const CanonicalRequest base = canonicalize(make_request());
  for (const double factor : {2.0, 8.0, 0.25}) {
    const CanonicalRequest scaled = canonicalize(make_request(1.0, factor));
    EXPECT_TRUE(scaled.normalized) << factor;
    EXPECT_EQ(scaled.fingerprint, base.fingerprint) << factor;
    EXPECT_EQ(scaled.key, base.key) << factor;
    EXPECT_EQ(scaled.byte_unit, base.byte_unit * factor) << factor;
  }
}

TEST(ServeRequest, CombinedPow2RescaleSharesKey) {
  const CanonicalRequest base = canonicalize(make_request());
  const CanonicalRequest scaled = canonicalize(make_request(8.0, 0.5));
  EXPECT_TRUE(scaled.normalized);
  EXPECT_EQ(scaled.fingerprint, base.fingerprint);
  EXPECT_EQ(scaled.key, base.key);
}

TEST(ServeRequest, LayerNamesDoNotAffectKey) {
  const CanonicalRequest a = canonicalize(make_request(1.0, 1.0, "alpha"));
  const CanonicalRequest b = canonicalize(make_request(1.0, 1.0, "beta"));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.key, b.key);
}

TEST(ServeRequest, NonUniformPerturbationChangesKey) {
  const CanonicalRequest base = canonicalize(make_request());
  PlanRequest perturbed = make_request();
  // Rebuild the chain with one layer 1% slower: not a uniform rescale.
  std::vector<Layer> layers;
  for (int l = 1; l <= perturbed.chain.length(); ++l) {
    Layer layer = perturbed.chain.layer(l);
    if (l == 3) layer.forward_time *= 1.01;
    layers.push_back(layer);
  }
  perturbed.chain =
      Chain("ragged", perturbed.chain.activation(0), std::move(layers));
  const CanonicalRequest other = canonicalize(perturbed);
  EXPECT_NE(other.fingerprint, base.fingerprint);
  EXPECT_NE(other.key, base.key);
}

TEST(ServeRequest, PlatformShapeChangesKey) {
  const CanonicalRequest base = canonicalize(make_request());
  PlanRequest more_gpus = make_request();
  more_gpus.platform.processors = 8;
  EXPECT_NE(canonicalize(more_gpus).key, base.key);
  PlanRequest more_memory = make_request();
  more_memory.platform.memory_per_processor *= 1.5;  // not a pow2 co-rescale
  EXPECT_NE(canonicalize(more_memory).key, base.key);
}

TEST(ServeRequest, ResultDeterminingOptionsChangeKey) {
  const CanonicalRequest base = canonicalize(make_request());
  PlanRequest fewer_iterations = make_request();
  fewer_iterations.options.phase1.iterations = 7;
  EXPECT_NE(canonicalize(fewer_iterations).key, base.key);

  PlanRequest coarse = make_request();
  coarse.options.phase1.dp.grid = Discretization::coarse();
  EXPECT_NE(canonicalize(coarse).key, base.key);

  PlanRequest contiguous = make_request();
  contiguous.planner = PlannerKind::MadPipeContiguous;
  EXPECT_NE(canonicalize(contiguous).key, base.key);
}

TEST(ServeRequest, ResultInvariantOptionsShareKey) {
  const CanonicalRequest base = canonicalize(make_request());
  // Engine, speculation and worker counts are bit-identical by construction
  // (enforced by the planner equivalence tests) — they must not split the
  // cache.
  PlanRequest tweaked = make_request();
  tweaked.options.phase1.dp.engine = DpEngine::ReferenceRecursive;
  tweaked.options.phase1.speculation = 3;
  tweaked.options.phase1.workers = 7;
  tweaked.options.phase2.speculation = 2;
  tweaked.options.workers = 5;
  tweaked.id = "different-id";
  tweaked.deadline_seconds = 0.5;
  EXPECT_EQ(canonicalize(tweaked).fingerprint, base.fingerprint);
  EXPECT_EQ(canonicalize(tweaked).key, base.key);
}

TEST(ServeRequest, UnscalableInputsFallBackToExactKey) {
  // A denormal layer time cannot be divided by the time unit exactly (the
  // quotient underflows to zero), so the round-trip check must refuse to
  // normalize and fall back to the exact key.
  PlanRequest request = make_request();
  std::vector<Layer> layers(2);
  layers[0].name = "a";
  layers[0].forward_time = 1.0;
  layers[0].backward_time = 2.0;
  layers[0].output_bytes = MB;
  layers[1].name = "b";
  layers[1].forward_time = 5e-324;  // smallest subnormal
  layers[1].backward_time = 1.0;
  layers[1].output_bytes = MB;
  request.chain = Chain("denormal", 0.0, std::move(layers));
  const CanonicalRequest canonical = canonicalize(request);
  EXPECT_FALSE(canonical.normalized);
  EXPECT_EQ(canonical.time_unit, 1.0);
  EXPECT_EQ(canonical.byte_unit, 1.0);
  // The fallback still keys deterministically.
  EXPECT_EQ(canonical.key, canonicalize(request).key);

  // Non-finite platform numbers are not provably scale-invariant either.
  PlanRequest infinite = make_request();
  infinite.platform.memory_per_processor =
      std::numeric_limits<double>::infinity();
  EXPECT_FALSE(canonicalize(infinite).normalized);
}

TEST(ServeRequest, CanonicalChainPlansLikeTheOriginal) {
  // The heart of the design: planning the canonical profile and rescaling
  // the result is bit-identical to planning the raw profile directly.
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  for (const double time_factor : {1.0, 16.0}) {
    PlanRequest request = make_request(time_factor, 2.0);
    request.options = options;
    const CanonicalRequest canonical = canonicalize(request);
    ASSERT_TRUE(canonical.normalized);

    const std::optional<Plan> direct =
        plan_madpipe(request.chain, request.platform, options);
    const std::optional<Plan> via_canonical =
        plan_madpipe(canonical.chain, canonical.platform, options);
    ASSERT_EQ(direct.has_value(), via_canonical.has_value()) << time_factor;
    if (!direct.has_value()) continue;
    const Plan denormalized =
        denormalize_plan(*via_canonical, canonical.time_unit);
    EXPECT_TRUE(plans_bit_identical(denormalized, *direct)) << time_factor;
  }
}

TEST(ServeRequest, PlansBitIdenticalDetectsDifferences) {
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  PlanRequest request = make_request();
  const std::optional<Plan> plan =
      plan_madpipe(request.chain, request.platform, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plans_bit_identical(*plan, *plan));
  Plan tweaked = *plan;
  tweaked.pattern.period = std::nextafter(tweaked.pattern.period, 1e9);
  EXPECT_FALSE(plans_bit_identical(*plan, tweaked));
}

}  // namespace
}  // namespace madpipe::serve
