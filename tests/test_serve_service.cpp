// PlanService end-to-end tests: golden bit-identity with direct planning,
// cache hits that provably skip the DP, request coalescing, backpressure
// rejection, deadline degradation, and clean shutdown under load.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "madpipe/planner.hpp"
#include "models/zoo.hpp"

namespace madpipe::serve {
namespace {

Chain ragged_chain(double time_factor = 1.0, double byte_factor = 1.0) {
  std::vector<Layer> layers;
  for (int l = 1; l <= 8; ++l) {
    Layer layer;
    layer.name = "l" + std::to_string(l);
    layer.forward_time = ms(1.0 + 0.37 * l) * time_factor;
    layer.backward_time = ms(2.0 + 0.61 * l) * time_factor;
    layer.weight_bytes = (3.0 + l) * MB * byte_factor;
    layer.output_bytes = (40.0 + 7.0 * l) * MB * byte_factor;
    layers.push_back(layer);
  }
  return Chain("ragged", 25 * MB * byte_factor, std::move(layers));
}

MadPipeOptions quick_options() {
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  return options;
}

PlanRequest make_request(const std::string& id, double time_factor = 1.0,
                         double byte_factor = 1.0) {
  return PlanRequest{id,
                     ragged_chain(time_factor, byte_factor),
                     Platform{4, 2 * GB * byte_factor,
                              12 * GB * byte_factor / time_factor},
                     PlannerKind::MadPipe,
                     quick_options(),
                     0.0};
}

TEST(ServeService, MissThenHitAreBitIdenticalToDirectPlanning) {
  const PlanRequest request = make_request("golden");
  const std::optional<Plan> direct =
      plan_madpipe(request.chain, request.platform, quick_options());
  ASSERT_TRUE(direct.has_value());

  PlanService service;
  const PlanResponse miss = service.plan(request);
  EXPECT_EQ(miss.status, ResponseStatus::Ok);
  EXPECT_EQ(miss.cache, CacheOutcome::Miss);
  ASSERT_TRUE(miss.plan.has_value());
  EXPECT_TRUE(plans_bit_identical(*miss.plan, *direct));

  const PlanResponse hit = service.plan(request);
  EXPECT_EQ(hit.status, ResponseStatus::Ok);
  EXPECT_EQ(hit.cache, CacheOutcome::Hit);
  ASSERT_TRUE(hit.plan.has_value());
  EXPECT_TRUE(plans_bit_identical(*hit.plan, *direct));
}

TEST(ServeService, HitsAreServedWithoutRerunningTheDp) {
  PlanService service;
  const PlanRequest request = make_request("nodp");
  const PlanResponse miss = service.plan(request);
  ASSERT_TRUE(miss.plan.has_value());
  const long long runs_after_miss = service.stats().planner_runs;
  EXPECT_EQ(runs_after_miss, 1);
  for (int i = 0; i < 10; ++i) {
    const PlanResponse hit = service.plan(request);
    EXPECT_EQ(hit.cache, CacheOutcome::Hit);
    // PlannerStats probe counters of the served plan stay those of the one
    // original run: nothing re-planned, re-probed or re-memoized.
    ASSERT_TRUE(hit.plan.has_value());
    EXPECT_EQ(hit.plan->stats.dp_probes, miss.plan->stats.dp_probes);
    EXPECT_EQ(hit.plan->stats.dp_states, miss.plan->stats.dp_states);
  }
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.planner_runs, 1);
  EXPECT_EQ(stats.hits, 10);
  EXPECT_EQ(stats.misses, 1);
}

TEST(ServeService, Pow2RescaledRequestHitsAndMatchesDirectPlanning) {
  PlanService service;
  service.plan(make_request("base"));

  const PlanRequest scaled = make_request("scaled", 16.0, 2.0);
  const PlanResponse hit = service.plan(scaled);
  EXPECT_EQ(hit.cache, CacheOutcome::Hit);
  ASSERT_TRUE(hit.plan.has_value());

  const std::optional<Plan> direct =
      plan_madpipe(scaled.chain, scaled.platform, quick_options());
  ASSERT_TRUE(direct.has_value());
  EXPECT_TRUE(plans_bit_identical(*hit.plan, *direct));

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.planner_runs, 1);
  EXPECT_EQ(stats.scaled_hits, 1);
}

TEST(ServeService, IdenticalConcurrentRequestsCoalesceIntoOneRun) {
  ServiceOptions options;
  options.workers = 4;
  PlanService service(options);
  constexpr int kClients = 12;
  const PlanRequest request = make_request("coalesce");
  std::vector<std::future<PlanResponse>> futures;
  futures.reserve(kClients);
  for (int c = 0; c < kClients; ++c) futures.push_back(service.submit(request));
  std::optional<Plan> first;
  int coalesced = 0;
  for (std::future<PlanResponse>& future : futures) {
    PlanResponse response = future.get();
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    ASSERT_TRUE(response.plan.has_value());
    if (!first.has_value()) first = *response.plan;
    EXPECT_TRUE(plans_bit_identical(*response.plan, *first));
    if (response.cache == CacheOutcome::Coalesced) ++coalesced;
  }
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.planner_runs, 1);
  EXPECT_EQ(stats.coalesced, coalesced);
  EXPECT_EQ(stats.coalesced + stats.misses + stats.hits, kClients);
}

// options.explain is cache-key-inert: a request asking for the summary and
// one that does not share the cache entry, the served plans are bit
// identical, and the summary only travels when asked for. Exercises all
// three paths: miss (canonical summary rescaled per waiter), plain hit,
// and hit with explain (computed directly in request units).
TEST(ServeService, ExplainIsCacheKeyInertAcrossMissAndHit) {
  PlanRequest plain = make_request("plain");
  PlanRequest explained = make_request("explained");
  explained.report_explain = true;
  EXPECT_EQ(canonicalize(plain).fingerprint,
            canonicalize(explained).fingerprint);
  EXPECT_EQ(canonicalize(plain).key, canonicalize(explained).key);

  PlanService service;
  const PlanResponse miss = service.plan(explained);
  EXPECT_EQ(miss.status, ResponseStatus::Ok);
  EXPECT_EQ(miss.cache, CacheOutcome::Miss);
  ASSERT_TRUE(miss.plan.has_value());
  ASSERT_TRUE(miss.explain.has_value());
  EXPECT_GT(miss.explain->period, 0.0);
  EXPECT_EQ(miss.explain->period, miss.plan->period());
  EXPECT_FALSE(miss.explain->critical_resource.empty());
  EXPECT_GE(miss.explain->critical_utilization, 0.0);
  EXPECT_LE(miss.explain->critical_utilization, 1.0);
  EXPECT_GT(miss.explain->memory_peak_bytes, 0.0);
  EXPECT_LE(miss.explain->memory_peak_bytes,
            plain.platform.memory_per_processor);

  // The explain flag did not fork the cache: the plain request hits, gets
  // the bit-identical plan, and carries no summary.
  const PlanResponse hit = service.plan(plain);
  EXPECT_EQ(hit.cache, CacheOutcome::Hit);
  ASSERT_TRUE(hit.plan.has_value());
  EXPECT_TRUE(plans_bit_identical(*hit.plan, *miss.plan));
  EXPECT_FALSE(hit.explain.has_value());

  // A hit that asks again gets the same summary bit for bit: the hit path
  // computes it directly in request units, the miss path rescaled the
  // canonical one — identical because the units are powers of two.
  const PlanResponse hit_explained = service.plan(explained);
  EXPECT_EQ(hit_explained.cache, CacheOutcome::Hit);
  ASSERT_TRUE(hit_explained.explain.has_value());
  EXPECT_EQ(hit_explained.explain->period, miss.explain->period);
  EXPECT_EQ(hit_explained.explain->critical_resource,
            miss.explain->critical_resource);
  EXPECT_EQ(hit_explained.explain->critical_utilization,
            miss.explain->critical_utilization);
  EXPECT_EQ(hit_explained.explain->memory_peak_bytes,
            miss.explain->memory_peak_bytes);
  EXPECT_EQ(hit_explained.explain->memory_headroom_bytes,
            miss.explain->memory_headroom_bytes);
  EXPECT_EQ(hit_explained.explain->binding_gpu, miss.explain->binding_gpu);
  EXPECT_EQ(hit_explained.explain->binding_term, miss.explain->binding_term);
  EXPECT_EQ(service.stats().planner_runs, 1);
}

// A power-of-two rescaled request served from cache carries a summary in
// *its* units: period and bytes scale exactly, ratios do not move.
TEST(ServeService, ExplainSummaryIsServedInRequestUnits) {
  PlanService service;
  PlanRequest base = make_request("base");
  base.report_explain = true;
  const PlanResponse miss = service.plan(base);
  ASSERT_TRUE(miss.explain.has_value());

  PlanRequest scaled = make_request("scaled", 16.0, 2.0);
  scaled.report_explain = true;
  const PlanResponse hit = service.plan(scaled);
  EXPECT_EQ(hit.cache, CacheOutcome::Hit);
  ASSERT_TRUE(hit.explain.has_value());
  EXPECT_EQ(hit.explain->period, miss.explain->period * 16.0);
  EXPECT_EQ(hit.explain->memory_peak_bytes,
            miss.explain->memory_peak_bytes * 2.0);
  EXPECT_EQ(hit.explain->memory_headroom_bytes,
            miss.explain->memory_headroom_bytes * 2.0);
  EXPECT_EQ(hit.explain->critical_utilization,
            miss.explain->critical_utilization);
  EXPECT_EQ(hit.explain->mean_gpu_utilization,
            miss.explain->mean_gpu_utilization);
  EXPECT_EQ(hit.explain->binding_gpu, miss.explain->binding_gpu);
  EXPECT_EQ(service.stats().planner_runs, 1);
}

TEST(ServeService, FullQueueRejectsImmediately) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  PlanService service(options);
  // Distinct requests (different gpu counts) so nothing coalesces; a single
  // worker grinds through them while the queue backs up.
  std::vector<std::future<PlanResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    PlanRequest request = make_request("load" + std::to_string(i));
    request.platform.memory_per_processor = (2.0 + 0.125 * i) * GB;
    futures.push_back(service.submit(std::move(request)));
  }
  int rejected = 0;
  for (std::future<PlanResponse>& future : futures) {
    const PlanResponse response = future.get();
    if (response.status == ResponseStatus::Rejected) {
      ++rejected;
      EXPECT_FALSE(response.plan.has_value());
      EXPECT_FALSE(response.error.empty());
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(service.stats().rejected, rejected);
}

TEST(ServeService, PastDeadlineDegradesInsteadOfStalling) {
  ServiceOptions options;
  options.workers = 1;
  // An expired deadline clamps every probe to the floor budget; a floor of
  // one state guarantees the valve fires.
  options.min_state_budget = 1;
  options.states_per_second = 1.0;
  PlanService service(options);
  PlanRequest request = make_request("late");
  request.deadline_seconds = 1e-9;  // effectively already over
  const PlanResponse response = service.plan(request);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(service.stats().degraded, 1);

  // Degraded results are not cached: a healthy follow-up re-plans fully and
  // the full-fidelity result is bit-identical to direct planning.
  PlanRequest healthy = make_request("ontime");
  const PlanResponse full = service.plan(healthy);
  EXPECT_EQ(full.cache, CacheOutcome::Miss);
  EXPECT_FALSE(full.degraded);
  ASSERT_TRUE(full.plan.has_value());
  const std::optional<Plan> direct =
      plan_madpipe(healthy.chain, healthy.platform, quick_options());
  ASSERT_TRUE(direct.has_value());
  EXPECT_TRUE(plans_bit_identical(*full.plan, *direct));
  EXPECT_EQ(service.stats().planner_runs, 2);
}

TEST(ServeService, InfeasibleRequestsAreNegativelyCached) {
  PlanService service;
  PlanRequest request = make_request("hopeless");
  request.platform.memory_per_processor = MB;  // nothing fits
  const PlanResponse miss = service.plan(request);
  EXPECT_EQ(miss.status, ResponseStatus::Infeasible);
  EXPECT_FALSE(miss.plan.has_value());
  const PlanResponse hit = service.plan(request);
  EXPECT_EQ(hit.status, ResponseStatus::Infeasible);
  EXPECT_EQ(hit.cache, CacheOutcome::Hit);
  EXPECT_EQ(service.stats().planner_runs, 1);
}

TEST(ServeService, DestructorDrainsAcceptedWork) {
  std::vector<std::future<PlanResponse>> futures;
  {
    ServiceOptions options;
    options.workers = 2;
    PlanService service(options);
    for (int i = 0; i < 6; ++i) {
      PlanRequest request = make_request("drain" + std::to_string(i));
      request.platform.memory_per_processor = (2.0 + 0.25 * i) * GB;
      futures.push_back(service.submit(std::move(request)));
    }
    // Service destroyed here with work still queued.
  }
  for (std::future<PlanResponse>& future : futures) {
    const PlanResponse response = future.get();  // must not hang or throw
    EXPECT_NE(response.status, ResponseStatus::Error);
  }
}

TEST(ServeService, DestructionCancelsQueuedJobsWithShutdownStatus) {
  std::future<PlanResponse> running;
  std::vector<std::future<PlanResponse>> queued;
  {
    ServiceOptions options;
    options.workers = 1;
    PlanService service(options);
    // A paper-scale chain on full default grids keeps the single worker
    // busy for >100 ms — long enough to observe the backlog deterministically.
    models::NetworkConfig config;
    config.network = "resnet50";
    config.chain_length = 16;
    PlanRequest slow{"running",
                     models::build_network(config),
                     Platform{4, 8 * GB, 12 * GB},
                     PlannerKind::MadPipe,
                     MadPipeOptions{},
                     0.0};
    running = service.submit(std::move(slow));
    for (int i = 0; i < 3; ++i) {
      PlanRequest request = make_request("queued" + std::to_string(i));
      request.platform.memory_per_processor = (2.0 + 0.25 * (i + 1)) * GB;
      queued.push_back(service.submit(std::move(request)));
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    // Exactly 3 queued means the worker has dequeued the slow job and the
    // three cheap ones all wait behind it.
    while (service.queue_depth() != 3 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(service.queue_depth(), 3u);
    // Service destroyed here: the running job finishes, the queued three
    // must be cancelled with the distinct Shutdown status — not Error, not
    // a silent hang waiting out the backlog.
  }
  EXPECT_EQ(running.get().status, ResponseStatus::Ok);
  for (std::future<PlanResponse>& future : queued) {
    const PlanResponse response = future.get();
    EXPECT_EQ(response.status, ResponseStatus::Shutdown);
    EXPECT_FALSE(response.error.empty());
    EXPECT_FALSE(response.plan.has_value());
  }
}

TEST(ServeService, SubmitAsyncCallbacksCarryShutdownStatusMidDrain) {
  // The callback path must honor the same drain contract as the future
  // path: destroying the service with a backlog fires every pending
  // callback exactly once, queued-but-unstarted jobs with Shutdown (the
  // fleet/TCP front-ends key retry logic off that distinction).
  std::mutex mutex;
  std::map<std::string, ResponseStatus> delivered;
  std::map<std::string, int> deliveries;
  {
    ServiceOptions options;
    options.workers = 1;
    PlanService service(options);
    auto capture = [&](PlanResponse&& response) {
      std::lock_guard<std::mutex> lock(mutex);
      delivered[response.id] = response.status;
      ++deliveries[response.id];
    };
    models::NetworkConfig config;
    config.network = "resnet50";
    config.chain_length = 16;
    PlanRequest slow{"running",
                     models::build_network(config),
                     Platform{4, 8 * GB, 12 * GB},
                     PlannerKind::MadPipe,
                     MadPipeOptions{},
                     0.0};
    service.submit_async(std::move(slow), capture);
    for (int i = 0; i < 3; ++i) {
      PlanRequest request = make_request("cancelled" + std::to_string(i));
      request.platform.memory_per_processor = (2.0 + 0.25 * (i + 1)) * GB;
      service.submit_async(std::move(request), capture);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (service.queue_depth() != 3 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(service.queue_depth(), 3u);
    // Destruction drains: the running job completes, the queued three are
    // cancelled — all through the callbacks, no futures anywhere.
  }
  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(delivered["running"], ResponseStatus::Ok);
  for (int i = 0; i < 3; ++i) {
    const std::string id = "cancelled" + std::to_string(i);
    EXPECT_EQ(delivered[id], ResponseStatus::Shutdown) << id;
    EXPECT_EQ(deliveries[id], 1) << id << " must be delivered exactly once";
  }
  EXPECT_EQ(deliveries["running"], 1);
}

TEST(ServeService, StatsSnapshotIsCoherent) {
  PlanService service;
  const PlanRequest request = make_request("stats");
  service.plan(request);
  service.plan(request);
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced + stats.rejected, 2);
  EXPECT_EQ(stats.cache_entries, 1);
  EXPECT_GT(stats.cache_bytes, 0);
  EXPECT_GT(stats.miss_p50_seconds, 0.0);
  EXPECT_GT(stats.hit_p50_seconds, 0.0);
}

}  // namespace
}  // namespace madpipe::serve
