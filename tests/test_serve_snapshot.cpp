// Cache snapshot (madpipe-cachesnap-v1) tests: a save→load round trip must
// turn every snapshotted key into a verified first-request hit, bit
// identical to the pre-restart plan and without a single planner run;
// corruption, truncation, and key/fingerprint mismatches must be rejected,
// never half-loaded; saving must be safe while the service is under load.
#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "madpipe/planner.hpp"
#include "serve/service.hpp"

namespace madpipe::serve {
namespace {

Chain ragged_chain() {
  std::vector<Layer> layers;
  for (int l = 1; l <= 8; ++l) {
    Layer layer;
    layer.name = "l" + std::to_string(l);
    layer.forward_time = ms(1.0 + 0.37 * l);
    layer.backward_time = ms(2.0 + 0.61 * l);
    layer.weight_bytes = (3.0 + l) * MB;
    layer.output_bytes = (40.0 + 7.0 * l) * MB;
    layers.push_back(layer);
  }
  return Chain("ragged", 25 * MB, std::move(layers));
}

MadPipeOptions quick_options() {
  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  return options;
}

PlanRequest make_request(const std::string& id, double memory_gb = 2.0) {
  return PlanRequest{id,
                     ragged_chain(),
                     Platform{4, memory_gb * GB, 12 * GB},
                     PlannerKind::MadPipe,
                     quick_options(),
                     0.0};
}

std::string snapshot_path(const char* name) {
  return testing::TempDir() + "madpipe_snap_" + name + ".bin";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void spit(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// Same FNV-1a the snapshot trailer uses; the tamper test re-stamps the
// checksum so only the *semantic* verification can catch the edit.
std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

void restamp_checksum(std::string& data) {
  const std::size_t payload = data.size() - sizeof(std::uint64_t);
  const std::uint64_t checksum = fnv1a(data.data(), payload);
  std::memcpy(data.data() + payload, &checksum, sizeof(checksum));
}

TEST(ServeSnapshot, SaveLoadRoundTripServesVerifiedBitIdenticalHits) {
  const std::string path = snapshot_path("roundtrip");
  const PlanRequest r1 = make_request("one", 2.0);
  const PlanRequest r2 = make_request("two", 4.0);

  PlanService before;
  const PlanResponse p1 = before.plan(r1);
  const PlanResponse p2 = before.plan(r2);
  ASSERT_EQ(p1.status, ResponseStatus::Ok);
  ASSERT_EQ(p2.status, ResponseStatus::Ok);

  const SnapshotSaveResult saved = save_cache_snapshot(before.cache(), path);
  ASSERT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(saved.entries, 2u);
  EXPECT_GT(saved.bytes, 0u);

  // A fresh service ("after restart"): the first request on every
  // snapshotted key is a hit, bit-identical, with zero planner runs.
  PlanService after;
  const SnapshotLoadResult loaded = load_cache_snapshot(after.cache(), path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.loaded, 2u);
  EXPECT_EQ(loaded.rejected, 0u);

  const PlanResponse h1 = after.plan(r1);
  const PlanResponse h2 = after.plan(r2);
  EXPECT_EQ(h1.cache, CacheOutcome::Hit);
  EXPECT_EQ(h2.cache, CacheOutcome::Hit);
  ASSERT_TRUE(h1.plan.has_value());
  ASSERT_TRUE(h2.plan.has_value());
  ASSERT_TRUE(p1.plan.has_value());
  ASSERT_TRUE(p2.plan.has_value());
  EXPECT_TRUE(plans_bit_identical(*h1.plan, *p1.plan));
  EXPECT_TRUE(plans_bit_identical(*h2.plan, *p2.plan));
  EXPECT_EQ(after.stats().planner_runs, 0);
  std::remove(path.c_str());
}

TEST(ServeSnapshot, InfeasibleNegativeEntryRoundTrips) {
  const std::string path = snapshot_path("negative");
  // 8 MB/processor cannot hold the ragged chain: a cached negative result.
  const PlanRequest impossible = make_request("no-fit", 0.008);

  PlanService before;
  const PlanResponse miss = before.plan(impossible);
  ASSERT_EQ(miss.status, ResponseStatus::Infeasible);
  const SnapshotSaveResult saved = save_cache_snapshot(before.cache(), path);
  ASSERT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(saved.entries, 1u);

  PlanService after;
  const SnapshotLoadResult loaded = load_cache_snapshot(after.cache(), path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.loaded, 1u);

  const PlanResponse hit = after.plan(impossible);
  EXPECT_EQ(hit.status, ResponseStatus::Infeasible);
  EXPECT_EQ(hit.cache, CacheOutcome::Hit);
  EXPECT_EQ(after.stats().planner_runs, 0);
  std::remove(path.c_str());
}

TEST(ServeSnapshot, CorruptedBytesAreRejectedWholesale) {
  const std::string path = snapshot_path("corrupt");
  PlanService service;
  service.plan(make_request("x"));
  ASSERT_TRUE(save_cache_snapshot(service.cache(), path).ok);

  std::string data = slurp(path);
  ASSERT_GT(data.size(), 64u);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x5a);
  spit(path, data);

  PlanService fresh;
  const SnapshotLoadResult loaded = load_cache_snapshot(fresh.cache(), path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("checksum"), std::string::npos) << loaded.error;
  EXPECT_EQ(loaded.loaded, 0u);
  std::remove(path.c_str());
}

TEST(ServeSnapshot, TruncatedSnapshotIsRejected) {
  const std::string path = snapshot_path("truncated");
  PlanService service;
  service.plan(make_request("x"));
  ASSERT_TRUE(save_cache_snapshot(service.cache(), path).ok);

  std::string data = slurp(path);
  spit(path, data.substr(0, data.size() - 9));

  PlanService fresh;
  const SnapshotLoadResult loaded = load_cache_snapshot(fresh.cache(), path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.loaded, 0u);
  std::remove(path.c_str());
}

TEST(ServeSnapshot, TamperedKeyFailsFingerprintVerification) {
  const std::string path = snapshot_path("tampered");
  PlanService service;
  service.plan(make_request("x"));
  ASSERT_TRUE(save_cache_snapshot(service.cache(), path).ok);

  // Flip one byte of the first entry's key (magic 21 + endian 4 + count 8
  // puts it at offset 33) and re-stamp the checksum: the bytes are "intact"
  // but key != digest(fingerprint), so the verified load must skip it.
  std::string data = slurp(path);
  const std::size_t key_offset = 21 + 4 + 8;
  ASSERT_GT(data.size(), key_offset + 8);
  data[key_offset] = static_cast<char>(data[key_offset] ^ 0xff);
  restamp_checksum(data);
  spit(path, data);

  PlanService fresh;
  const SnapshotLoadResult loaded = load_cache_snapshot(fresh.cache(), path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.loaded, 0u);
  EXPECT_EQ(loaded.rejected, 1u);

  // The poisoned entry never reaches the cache: the request plans fresh.
  const PlanResponse response = fresh.plan(make_request("x"));
  EXPECT_EQ(response.cache, CacheOutcome::Miss);
  std::remove(path.c_str());
}

TEST(ServeSnapshot, SaveIsConsistentUnderConcurrentServing) {
  const std::string path = snapshot_path("underload");
  PlanService service;
  // Pre-plan a few keys, then hammer hits on them while snapshots run.
  std::vector<PlanRequest> pool;
  for (int k = 0; k < 4; ++k) {
    pool.push_back(make_request("pool" + std::to_string(k), 2.0 + k));
    service.plan(pool.back());
  }

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 50; ++i) {
        service.plan(pool[static_cast<std::size_t>((c + i) % 4)]);
      }
    });
  }
  SnapshotSaveResult last;
  for (int s = 0; s < 5; ++s) {
    last = save_cache_snapshot(service.cache(), path);
    ASSERT_TRUE(last.ok) << last.error;
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(last.entries, 4u);

  PlanService fresh;
  const SnapshotLoadResult loaded = load_cache_snapshot(fresh.cache(), path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.loaded, 4u);
  for (const PlanRequest& request : pool) {
    EXPECT_EQ(fresh.plan(request).cache, CacheOutcome::Hit);
  }
  EXPECT_EQ(fresh.stats().planner_runs, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace madpipe::serve
