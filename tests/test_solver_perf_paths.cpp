// Golden-equivalence and regression coverage for the solver fast paths:
// Dantzig pricing with the Bland anti-cycling fallback, per-solve bound
// overrides, warm-started (dual simplex) re-solves, the root rounding
// heuristic, and the budget/truncation status split in solve_milp.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "solver/lp.hpp"
#include "solver/milp.hpp"

namespace madpipe::solver {
namespace {

// --- A small model corpus shared by the equivalence suites -----------------

/// Deterministic LCG in [0,1) (same family as the bench generators).
struct Lcg {
  unsigned value = 12345;
  double next() {
    value = value * 1103515245u + 12345u;
    return static_cast<double>((value >> 16) & 0x7fff) / 32768.0;
  }
};

Model dense_lp(int n, unsigned seed) {
  Model model;
  model.set_sense(Sense::Maximize);
  Lcg rng{seed};
  for (int i = 0; i < n; ++i) {
    model.add_variable("x" + std::to_string(i), 0.0, 10.0, rng.next());
  }
  for (int r = 0; r < n; ++r) {
    LinearExpr expr;
    for (int i = 0; i < n; ++i) expr.add(i, rng.next());
    model.add_constraint(std::move(expr), Relation::LessEqual,
                         1.0 + 5.0 * rng.next());
  }
  return model;
}

Model knapsack_milp(int items, unsigned seed) {
  Model model;
  model.set_sense(Sense::Maximize);
  Lcg rng{seed};
  LinearExpr total;
  double capacity = 0.0;
  for (int i = 0; i < items; ++i) {
    const double weight = 1.0 + 9.0 * rng.next();
    const double worth = 1.0 + 9.0 * rng.next();
    const int x = model.add_variable("x" + std::to_string(i), 0.0, 1.0, worth,
                                     VarType::Integer);
    total.add(x, weight);
    capacity += weight;
  }
  model.add_constraint(std::move(total), Relation::LessEqual, 0.45 * capacity);
  return model;
}

/// Mixed-relation LP with an equality and shifted lower bounds, so the
/// phase-1 / artificial machinery is on the path.
Model mixed_lp() {
  Model model;
  const int x = model.add_variable("x", 2.0, 1e9, 2.0);
  const int y = model.add_variable("y", 0.0, 8.0, 3.0);
  const int z = model.add_variable("z", 0.0, 1e9, 1.0);
  model.add_constraint(LinearExpr().add(x, 1.0).add(y, 1.0),
                       Relation::GreaterEqual, 10.0);
  model.add_constraint(LinearExpr().add(y, 1.0).add(z, 2.0), Relation::Equal,
                       8.0);
  return model;
}

// --- Golden equivalence: every pricing / restart mode, same answers --------

TEST(SolverGolden, PricingModesAgreeOnLPCorpus) {
  for (const int n : {6, 12, 24}) {
    const Model model = dense_lp(n, 12345u + static_cast<unsigned>(n));
    LPOptions dantzig;  // defaults: Dantzig with Bland fallback
    LPOptions bland;
    bland.stall_pivots_before_bland = 0;  // pure Bland, the seed strategy
    const LPResult a = solve_lp(model, dantzig);
    const LPResult b = solve_lp(model, bland);
    ASSERT_EQ(a.status, LPStatus::Optimal) << "n=" << n;
    ASSERT_EQ(b.status, LPStatus::Optimal) << "n=" << n;
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "n=" << n;
  }
}

TEST(SolverGolden, PricingModesAgreeOnMixedRelations) {
  const Model model = mixed_lp();
  LPOptions bland;
  bland.stall_pivots_before_bland = 0;
  const LPResult a = solve_lp(model);
  const LPResult b = solve_lp(model, bland);
  ASSERT_EQ(a.status, LPStatus::Optimal);
  ASSERT_EQ(b.status, LPStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(SolverGolden, MILPModesAgreeOnKnapsackCorpus) {
  for (const unsigned seed : {1u, 7u, 12345u}) {
    const Model model = knapsack_milp(14, seed);
    MILPOptions plain;
    plain.warm_start = false;
    plain.rounding_heuristic = false;
    MILPOptions fast;
    fast.warm_start = true;
    fast.rounding_heuristic = true;
    MILPOptions bland;
    bland.warm_start = false;
    bland.rounding_heuristic = false;
    bland.lp.stall_pivots_before_bland = 0;
    const MILPResult a = solve_milp(model, plain);
    const MILPResult b = solve_milp(model, fast);
    const MILPResult c = solve_milp(model, bland);
    ASSERT_EQ(a.status, MILPStatus::Optimal) << "seed=" << seed;
    ASSERT_EQ(b.status, MILPStatus::Optimal) << "seed=" << seed;
    ASSERT_EQ(c.status, MILPStatus::Optimal) << "seed=" << seed;
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed=" << seed;
    EXPECT_NEAR(a.objective, c.objective, 1e-6) << "seed=" << seed;
  }
}

TEST(SolverGolden, MILPModesAgreeOnInfeasibleModel) {
  // x + y ≥ 12 with x,y ∈ {0..5}: integer- and LP-infeasible.
  Model model;
  const int x = model.add_variable("x", 0.0, 5.0, 1.0, VarType::Integer);
  const int y = model.add_variable("y", 0.0, 5.0, 1.0, VarType::Integer);
  model.add_constraint(LinearExpr().add(x, 1.0).add(y, 1.0),
                       Relation::GreaterEqual, 12.0);
  for (const bool warm : {false, true}) {
    MILPOptions options;
    options.warm_start = warm;
    EXPECT_EQ(solve_milp(model, options).status, MILPStatus::Infeasible);
  }
}

// --- Bound overrides: the copy-free branching view -------------------------

TEST(SolverBounds, OverridesMatchRebuiltModel) {
  const Model base = dense_lp(10, 99u);
  const int n = base.num_variables();
  std::vector<double> lower(static_cast<std::size_t>(n), 0.0);
  std::vector<double> upper(static_cast<std::size_t>(n), 10.0);
  lower[2] = 0.2;  // tightened like a B&B "up" branch
  upper[5] = 0.3;  // tightened like a B&B "down" branch
  upper[7] = 0.0;  // fixed at zero

  LPOptions options;
  options.lower_bounds = lower;
  options.upper_bounds = upper;
  const LPResult with_view = solve_lp(base, options);

  Model rebuilt;
  rebuilt.set_sense(base.sense());
  for (int v = 0; v < n; ++v) {
    const VariableDef& def = base.variable(v);
    rebuilt.add_variable(def.name, lower[static_cast<std::size_t>(v)],
                         upper[static_cast<std::size_t>(v)], def.objective,
                         def.type);
  }
  for (int c = 0; c < base.num_constraints(); ++c) {
    const ConstraintDef& def = base.constraint(c);
    rebuilt.add_constraint(def.expr, def.relation, def.rhs, def.name);
  }
  const LPResult from_rebuild = solve_lp(rebuilt);

  ASSERT_EQ(with_view.status, from_rebuild.status);
  ASSERT_EQ(with_view.status, LPStatus::Optimal);
  EXPECT_NEAR(with_view.objective, from_rebuild.objective, 1e-6);
  EXPECT_GE(with_view.values[2], 0.2 - 1e-9);
  EXPECT_LE(with_view.values[5], 0.3 + 1e-9);
  EXPECT_NEAR(with_view.values[7], 0.0, 1e-9);
}

TEST(SolverBounds, CrossedOverrideBoundsAreInfeasible) {
  const Model base = dense_lp(4, 5u);
  std::vector<double> lower(4, 0.0);
  std::vector<double> upper(4, 10.0);
  lower[1] = 3.0;
  upper[1] = 2.0;  // empty box
  LPOptions options;
  options.lower_bounds = lower;
  options.upper_bounds = upper;
  EXPECT_EQ(solve_lp(base, options).status, LPStatus::Infeasible);
}

// --- Warm starts: basis out, basis in --------------------------------------

TEST(SolverWarmStart, BasisRoundTripsAndHits) {
  const Model base = dense_lp(8, 7u);
  const int n = base.num_variables();
  LPOptions first;
  first.want_basis = true;
  const LPResult parent = solve_lp(base, first);
  ASSERT_EQ(parent.status, LPStatus::Optimal);
  ASSERT_TRUE(parent.basis.valid());

  // Re-solve with one bound tightened, restarting from the parent's basis:
  // must agree with a cold solve of the same subproblem and count a hit
  // (the restart is only a performance path, never a semantic one — but a
  // hit proves the dual-simplex path actually ran).
  std::vector<double> lower(static_cast<std::size_t>(n), 0.0);
  std::vector<double> upper(static_cast<std::size_t>(n), 10.0);
  upper[0] = 1.0;
  LPOptions warm;
  warm.lower_bounds = lower;
  warm.upper_bounds = upper;
  warm.warm_start = &parent.basis;
  const LPResult restarted = solve_lp(base, warm);

  LPOptions cold;
  cold.lower_bounds = lower;
  cold.upper_bounds = upper;
  const LPResult reference = solve_lp(base, cold);

  ASSERT_EQ(restarted.status, reference.status);
  ASSERT_EQ(restarted.status, LPStatus::Optimal);
  EXPECT_NEAR(restarted.objective, reference.objective, 1e-6);
  EXPECT_EQ(restarted.stats.warm_start_hits +
                restarted.stats.warm_start_misses,
            1);
}

TEST(SolverWarmStart, MismatchedBasisFallsBackToColdSolve) {
  const Model base = dense_lp(8, 7u);
  LPBasis bogus;
  bogus.rows = 3;
  bogus.cols = 5;
  bogus.columns = {0, 1, 2};
  LPOptions options;
  options.warm_start = &bogus;
  const LPResult r = solve_lp(base, options);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_EQ(r.stats.warm_start_hits, 0);
  EXPECT_EQ(r.stats.warm_start_misses, 1);
  const LPResult cold = solve_lp(base);
  EXPECT_NEAR(r.objective, cold.objective, 1e-9);
}

TEST(SolverWarmStart, MILPWarmRunReportsHits) {
  const Model model = knapsack_milp(12, 3u);
  MILPOptions options;
  options.warm_start = true;
  const MILPResult r = solve_milp(model, options);
  ASSERT_EQ(r.status, MILPStatus::Optimal);
  // Every non-root node carries its parent's basis; at least some must
  // restart successfully for the feature to be worth its plumbing.
  EXPECT_GT(r.stats.warm_start_hits, 0);
}

// --- Degenerate cycling regression: the Dantzig→Bland fallback -------------

TEST(SolverDegenerate, BealeCycleTerminatesUnderDantzig) {
  // Beale's classic cycling LP: Dantzig pricing with a naive tie-break
  // cycles forever; the stall-triggered Bland fallback must terminate at
  // the optimum, objective −0.05 (min −0.75x1 + 150x2 − 0.02x3 + 6x4).
  Model model;
  const int x1 = model.add_variable("x1", 0.0, 1e9, -0.75);
  const int x2 = model.add_variable("x2", 0.0, 1e9, 150.0);
  const int x3 = model.add_variable("x3", 0.0, 1e9, -0.02);
  const int x4 = model.add_variable("x4", 0.0, 1e9, 6.0);
  model.add_constraint(LinearExpr().add(x1, 0.25).add(x2, -60.0).add(x3, -0.04)
                           .add(x4, 9.0),
                       Relation::LessEqual, 0.0);
  model.add_constraint(LinearExpr().add(x1, 0.5).add(x2, -90.0).add(x3, -0.02)
                           .add(x4, 3.0),
                       Relation::LessEqual, 0.0);
  model.add_constraint(LinearExpr().add(x3, 1.0), Relation::LessEqual, 1.0);

  LPOptions options;
  options.stall_pivots_before_bland = 2;  // force the fallback quickly
  const LPResult r = solve_lp(model, options);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
  // The degenerate stall must actually have engaged Bland's rule.
  EXPECT_GT(r.stats.bland_pivots, 0);
}

TEST(SolverDegenerate, PureBlandMatchesFallbackResult) {
  Model model;
  const int x1 = model.add_variable("x1", 0.0, 1e9, -0.75);
  model.add_variable("x2", 0.0, 1e9, 150.0);
  const int x3 = model.add_variable("x3", 0.0, 1e9, -0.02);
  model.add_variable("x4", 0.0, 1e9, 6.0);
  model.add_constraint(LinearExpr().add(x1, 0.25).add(1, -60.0).add(x3, -0.04)
                           .add(3, 9.0),
                       Relation::LessEqual, 0.0);
  model.add_constraint(LinearExpr().add(x1, 0.5).add(1, -90.0).add(x3, -0.02)
                           .add(3, 3.0),
                       Relation::LessEqual, 0.0);
  model.add_constraint(LinearExpr().add(x3, 1.0), Relation::LessEqual, 1.0);
  LPOptions bland;
  bland.stall_pivots_before_bland = 0;
  const LPResult r = solve_lp(model, bland);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

// --- Budget exhaustion vs LP truncation ------------------------------------

TEST(SolverStatus, NodeBudgetSetsOnlyBudgetExhausted) {
  const Model model = knapsack_milp(14, 12345u);
  MILPOptions options;
  options.max_nodes = 1;
  const MILPResult r = solve_milp(model, options);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_FALSE(r.lp_truncated);
  EXPECT_TRUE(r.status == MILPStatus::Limit ||
              r.status == MILPStatus::Feasible);
}

TEST(SolverStatus, LPIterationLimitSetsOnlyLpTruncated) {
  const Model model = knapsack_milp(14, 12345u);
  MILPOptions options;
  options.lp.max_iterations = 1;  // every relaxation truncates
  const MILPResult r = solve_milp(model, options);
  EXPECT_TRUE(r.lp_truncated);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_EQ(r.status, MILPStatus::Limit);
}

TEST(SolverStatus, CleanRunSetsNeitherFlag) {
  const Model model = knapsack_milp(10, 2u);
  const MILPResult r = solve_milp(model);
  ASSERT_EQ(r.status, MILPStatus::Optimal);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_FALSE(r.lp_truncated);
}

// --- SolverStats plumbing ---------------------------------------------------

TEST(SolverStatsCounters, LPCountsPivotsAndSolves) {
  const Model model = dense_lp(10, 42u);
  const LPResult r = solve_lp(model);
  ASSERT_EQ(r.status, LPStatus::Optimal);
  EXPECT_EQ(r.stats.lp_solves, 1);
  EXPECT_GT(r.stats.pivots, 0);
  EXPECT_EQ(r.stats.pivots,
            r.stats.phase1_iterations + r.stats.phase2_iterations +
                r.stats.dual_iterations);
  EXPECT_GE(r.stats.wall_seconds, 0.0);
}

TEST(SolverStatsCounters, MILPAggregatesAcrossNodes) {
  const Model model = knapsack_milp(12, 12345u);
  const MILPResult r = solve_milp(model);
  ASSERT_EQ(r.status, MILPStatus::Optimal);
  EXPECT_EQ(r.stats.nodes_explored, r.nodes_explored);
  EXPECT_EQ(r.stats.lp_solves, r.nodes_explored);
  EXPECT_GT(r.stats.pivots, 0);
  EXPECT_GE(r.stats.wall_seconds, 0.0);
}

TEST(SolverStatsCounters, RoundingHeuristicSeedsIncumbent) {
  // A model where rounding the root relaxation down is feasible: maximize
  // Σx over x_i ∈ {0,1} with Σ w x ≤ W. Rounding the fractional item to 0
  // keeps the weight constraint satisfied, so the heuristic must fire.
  const Model model = knapsack_milp(16, 12345u);
  MILPOptions options;
  options.rounding_heuristic = true;
  const MILPResult with_heur = solve_milp(model, options);
  options.rounding_heuristic = false;
  const MILPResult without = solve_milp(model, options);
  ASSERT_EQ(with_heur.status, MILPStatus::Optimal);
  ASSERT_EQ(without.status, MILPStatus::Optimal);
  EXPECT_NEAR(with_heur.objective, without.objective, 1e-6);
  EXPECT_EQ(with_heur.stats.heuristic_incumbents, 1);
  EXPECT_EQ(without.stats.heuristic_incumbents, 0);
}

}  // namespace
}  // namespace madpipe::solver
