#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/expect.hpp"

namespace madpipe::stats {
namespace {

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, GeometricMeanBasic) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 2.0);
}

TEST(Stats, GeometricMeanIsScaleInvariantRatio) {
  // geomean(k*x) = k * geomean(x)
  const std::vector<double> xs{0.5, 2.0, 8.0};
  const std::vector<double> scaled{1.5, 6.0, 24.0};
  EXPECT_NEAR(geometric_mean(scaled), 3.0 * geometric_mean(xs), 1e-12);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geometric_mean(xs), ContractViolation);
}

TEST(Stats, GeometricMeanOfSingleton) {
  const std::vector<double> xs{7.25};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 7.25);
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs{2.0, 4.0};  // mean 3, deviations ±1
  EXPECT_DOUBLE_EQ(stddev(xs), 1.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
}

TEST(Stats, PercentileRejectsBadRank) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, 1.5), ContractViolation);
}

TEST(Stats, AccumulatorMatchesBatchFunctions) {
  const std::vector<double> xs{1.0, 5.0, 2.0, 8.0, -3.0};
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), 5);
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), min(xs));
  EXPECT_DOUBLE_EQ(acc.max(), max(xs));
  EXPECT_NEAR(acc.stddev(), stddev(xs), 1e-9);
}

TEST(Stats, AccumulatorEmpty) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

}  // namespace
}  // namespace madpipe::stats
