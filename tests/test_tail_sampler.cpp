// Tail-sampler tests: the retention rules (slowest-k per window, rolled
// windows, always-sampled errors), the bounded-memory guarantees (span cap
// with the truncated flag, active-map overflow accounting), the
// madpipe-admin-v1 /slow document, the Span fast path routing finished
// spans into the sampler under a TraceContextScope, and the
// spans-dropped-on-ring-wrap counter the sampler's counters block exposes.
#include "obs/tail_sampler.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace madpipe {
namespace {

/// Arm the process tail sampler for one test, disarming on exit so no test
/// leaves sampling live for its neighbours (same discipline as ScopedTrace
/// in test_obs.cpp).
struct ScopedTailSampling {
  explicit ScopedTailSampling(const obs::TailSamplerOptions& options = {}) {
    obs::arm_tail_sampling(options);
  }
  ~ScopedTailSampling() { obs::disarm_tail_sampling(); }
};

obs::SampledRequest make_request(std::uint64_t trace_id, double latency,
                                 bool error = false) {
  obs::SampledRequest r;
  r.trace_id = trace_id;
  r.request_id = "r" + std::to_string(trace_id);
  r.status = error ? "rejected" : "ok";
  r.cache = "miss";
  r.latency_seconds = latency;
  r.admission_seconds = latency * 0.1;
  r.queue_seconds = latency * 0.2;
  r.plan_seconds = latency * 0.7;
  r.error = error;
  return r;
}

/// begin + end with no spans: the retention path alone.
void run_request(obs::TailSampler& sampler, std::uint64_t trace_id,
                 double latency, bool error = false) {
  sampler.begin(trace_id, obs::now_ns());
  sampler.end(make_request(trace_id, latency, error));
}

TEST(ObsTailSampler, SlowestKPerWindowSurviveSortedSlowestFirst) {
  obs::TailSamplerOptions options;
  options.keep_slowest = 3;
  options.window_seconds = 3600.0;  // no roll during the test
  obs::TailSampler sampler(options);

  // 1..10 ms; only 8, 9, 10 ms may survive.
  for (int i = 1; i <= 10; ++i) {
    run_request(sampler, static_cast<std::uint64_t>(i), i * 1e-3);
  }

  const obs::TailSampler::Snapshot snap = sampler.snapshot();
  ASSERT_EQ(snap.slow.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.slow[0].latency_seconds, 10e-3);
  EXPECT_DOUBLE_EQ(snap.slow[1].latency_seconds, 9e-3);
  EXPECT_DOUBLE_EQ(snap.slow[2].latency_seconds, 8e-3);
  EXPECT_EQ(snap.started, 10);
  EXPECT_EQ(snap.finished, 10);
  EXPECT_TRUE(snap.errors.empty());
}

TEST(ObsTailSampler, FastRequestNeverDisplacesASlowerOne) {
  obs::TailSamplerOptions options;
  options.keep_slowest = 2;
  options.window_seconds = 3600.0;
  obs::TailSampler sampler(options);

  run_request(sampler, 1, 0.5);
  run_request(sampler, 2, 0.4);
  run_request(sampler, 3, 0.001);  // faster than both retained: dropped

  const obs::TailSampler::Snapshot snap = sampler.snapshot();
  ASSERT_EQ(snap.slow.size(), 2u);
  EXPECT_EQ(snap.slow[0].trace_id, 1u);
  EXPECT_EQ(snap.slow[1].trace_id, 2u);
  EXPECT_EQ(snap.retained, 2);
}

TEST(ObsTailSampler, WindowRollKeepsThePreviousWindowsWinners) {
  obs::TailSamplerOptions options;
  options.keep_slowest = 2;
  options.window_seconds = 0.0;  // every completion rolls the window
  obs::TailSampler sampler(options);

  run_request(sampler, 1, 0.2);  // rolls (empty), lands in the new window
  run_request(sampler, 2, 0.1);  // rolls: 1 becomes "previous", 2 current

  const obs::TailSampler::Snapshot snap = sampler.snapshot();
  // Both windows are visible, slowest first across the pair.
  ASSERT_EQ(snap.slow.size(), 2u);
  EXPECT_EQ(snap.slow[0].trace_id, 1u);
  EXPECT_EQ(snap.slow[1].trace_id, 2u);

  // A third completion rolls again: request 1's window is forgotten.
  run_request(sampler, 3, 0.05);
  const obs::TailSampler::Snapshot later = sampler.snapshot();
  ASSERT_EQ(later.slow.size(), 2u);
  EXPECT_EQ(later.slow[0].trace_id, 2u);
  EXPECT_EQ(later.slow[1].trace_id, 3u);
}

TEST(ObsTailSampler, ErrorsAreAlwaysRetainedAndBounded) {
  obs::TailSamplerOptions options;
  options.keep_slowest = 1;
  options.keep_errors = 2;
  options.window_seconds = 3600.0;
  obs::TailSampler sampler(options);

  run_request(sampler, 1, 10.0);           // slow success holds the k=1 slot
  run_request(sampler, 2, 1e-6, true);     // instant failure: sampled anyway
  run_request(sampler, 3, 1e-6, true);
  run_request(sampler, 4, 1e-6, true);     // bounded: 2 drops out

  const obs::TailSampler::Snapshot snap = sampler.snapshot();
  ASSERT_EQ(snap.slow.size(), 1u);
  EXPECT_EQ(snap.slow[0].trace_id, 1u);
  ASSERT_EQ(snap.errors.size(), 2u);  // newest last, oldest evicted
  EXPECT_EQ(snap.errors[0].trace_id, 3u);
  EXPECT_EQ(snap.errors[1].trace_id, 4u);
  EXPECT_TRUE(snap.errors[0].error);
}

TEST(ObsTailSampler, SpanCapSetsTruncatedAndBoundsMemory) {
  obs::TailSamplerOptions options;
  options.max_spans_per_request = 4;
  options.window_seconds = 3600.0;
  obs::TailSampler sampler(options);

  sampler.begin(7, obs::now_ns());
  for (int i = 0; i < 10; ++i) {
    obs::TraceEvent event;
    event.name = "obs_tail_cap";
    event.category = obs::kCatServe;
    event.start_ns = obs::now_ns();
    event.trace_id = 7;
    sampler.record(7, event);
  }
  sampler.end(make_request(7, 0.1));

  const obs::TailSampler::Snapshot snap = sampler.snapshot();
  ASSERT_EQ(snap.slow.size(), 1u);
  EXPECT_EQ(snap.slow[0].spans.size(), 4u);
  EXPECT_TRUE(snap.slow[0].truncated);
}

TEST(ObsTailSampler, PhaseSpansSurviveAFloodOfInnerPlannerSpans) {
  // Spans are recorded in finish order, so a planning-heavy request's inner
  // planner spans all land before the serve-phase spans that wrap them. The
  // reserved headroom must keep the phase breakdown in the tree anyway.
  obs::TailSamplerOptions options;
  options.max_spans_per_request = 16;
  options.window_seconds = 3600.0;
  obs::TailSampler sampler(options);

  sampler.begin(9, obs::now_ns());
  obs::TraceEvent inner;
  inner.name = "obs_tail_inner";
  inner.category = obs::kCatPlanner;
  inner.trace_id = 9;
  for (int i = 0; i < 100; ++i) sampler.record(9, inner);
  obs::TraceEvent phase;
  phase.name = "serve_plan";
  phase.category = obs::kCatServe;
  phase.trace_id = 9;
  sampler.record(9, phase);
  sampler.end(make_request(9, 0.3));

  const obs::TailSampler::Snapshot snap = sampler.snapshot();
  ASSERT_EQ(snap.slow.size(), 1u);
  EXPECT_TRUE(snap.slow[0].truncated);
  EXPECT_LE(snap.slow[0].spans.size(), 16u);
  bool has_phase = false;
  for (const obs::TraceEvent& e : snap.slow[0].spans) {
    if (e.name != nullptr && std::string("serve_plan") == e.name) {
      has_phase = true;
    }
  }
  EXPECT_TRUE(has_phase);
}

TEST(ObsTailSampler, ActiveMapOverflowIsCountedNotGrown) {
  obs::TailSamplerOptions options;
  options.max_active = 0;  // each shard admits at most one active request
  options.window_seconds = 3600.0;
  obs::TailSampler sampler(options);

  // Ids 16 apart hash to the same shard; the second begin must be refused.
  sampler.begin(1, obs::now_ns());
  sampler.begin(17, obs::now_ns());
  obs::TailSampler::Snapshot snap = sampler.snapshot();
  EXPECT_EQ(snap.started, 1);
  EXPECT_EQ(snap.overflow_dropped, 1);

  // Ending a refused request is a no-op, not a crash or a retention.
  sampler.end(make_request(17, 5.0));
  snap = sampler.snapshot();
  EXPECT_EQ(snap.finished, 0);
  EXPECT_TRUE(snap.slow.empty());
}

TEST(ObsTailSampler, UnknownAndZeroTraceIdsAreIgnored) {
  obs::TailSampler sampler;
  obs::TraceEvent event;
  event.name = "obs_tail_unknown";
  sampler.record(0, event);    // no context
  sampler.record(99, event);   // never began
  sampler.begin(0, obs::now_ns());
  sampler.end(make_request(0, 1.0));
  const obs::TailSampler::Snapshot snap = sampler.snapshot();
  EXPECT_EQ(snap.started, 0);
  EXPECT_EQ(snap.finished, 0);
  EXPECT_TRUE(snap.slow.empty());
}

TEST(ObsTailSampler, SpansFinishedInsideAContextScopeAreSampled) {
  // The integration path the serving stack uses: arm the process sampler,
  // register the request, run spans under its TraceContextScope (tracing
  // itself stays DISARMED — tail sampling works without the rings).
  ASSERT_FALSE(obs::trace_enabled());
  ScopedTailSampling armed;
  obs::TailSampler& sampler = obs::tail_sampler();

  const std::uint64_t id = obs::next_trace_id();
  sampler.begin(id, obs::now_ns());
  {
    obs::TraceContextScope scope(id);
    EXPECT_EQ(obs::current_trace_id(), id);
    obs::Span span("obs_tail_scoped", obs::kCatServe);
    span.arg("value", 7);
  }
  EXPECT_EQ(obs::current_trace_id(), 0u);
  {
    // Outside the scope: the span has no trace id and is not sampled.
    obs::Span span("obs_tail_unscoped", obs::kCatServe);
  }
  sampler.end(make_request(id, 0.25));

  const obs::TailSampler::Snapshot snap = sampler.snapshot();
  ASSERT_EQ(snap.slow.size(), 1u);
  const obs::SampledRequest& kept = snap.slow[0];
  EXPECT_EQ(kept.trace_id, id);
  ASSERT_EQ(kept.spans.size(), 1u);
  EXPECT_STREQ(kept.spans[0].name, "obs_tail_scoped");
  EXPECT_EQ(kept.spans[0].trace_id, id);
  ASSERT_NE(kept.spans[0].arg1_key, nullptr);
  EXPECT_EQ(kept.spans[0].arg1_value, 7);
}

TEST(ObsTailSampler, SlowJsonIsAdminV1AndRoundTripsThroughTheParser) {
  ScopedTailSampling armed;
  obs::TailSampler& sampler = obs::tail_sampler();

  const std::uint64_t id = obs::next_trace_id();
  sampler.begin(id, obs::now_ns());
  {
    obs::TraceContextScope scope(id);
    obs::Span span("obs_tail_json", obs::kCatServe);
  }
  obs::SampledRequest done = make_request(id, 0.125);
  done.request_id = "slow-one";
  sampler.end(std::move(done));

  const std::string text = sampler.slow_json();
  const json::ParseResult parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("schema", ""), "madpipe-admin-v1");

  const json::Value* slow = parsed.value.find("slow");
  ASSERT_NE(slow, nullptr);
  ASSERT_TRUE(slow->is_array());
  ASSERT_EQ(slow->items().size(), 1u);
  const json::Value& entry = slow->items()[0];
  EXPECT_EQ(entry.string_or("trace_id", ""), obs::format_trace_id(id));
  EXPECT_EQ(entry.string_or("id", ""), "slow-one");
  EXPECT_DOUBLE_EQ(entry.number_or("latency_seconds", 0.0), 0.125);
  const json::Value* phases = entry.find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_GT(phases->number_or("plan_seconds", 0.0), 0.0);
  const json::Value* spans = entry.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->items().size(), 1u);
  EXPECT_EQ(spans->items()[0].string_or("name", ""), "obs_tail_json");

  const json::Value* counters = parsed.value.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("finished", -1.0), 1.0);
  // The drop counter is present even when zero so dashboards can rate() it.
  ASSERT_NE(counters->find("spans_dropped_total"), nullptr);
}

TEST(ObsTailSampler, TraceIdsAreUniquePositiveAndHexFormatted) {
  const std::uint64_t a = obs::next_trace_id();
  const std::uint64_t b = obs::next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  // Top bit clear: always representable as a positive int64 span arg.
  EXPECT_EQ(a >> 63, 0u);
  const std::string hex = obs::format_trace_id(a);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(std::strtoull(hex.c_str(), nullptr, 16), a);
}

TEST(ObsTailSampler, RingOverwriteBumpsTheSpansDroppedCounter) {
  const long long before = obs::spans_dropped_total();
  obs::install_trace(4);  // 4 slots; 10 spans overwrite 6
  for (int i = 0; i < 10; ++i) {
    obs::Span span("obs_tail_drop", obs::kCatServe);
  }
  obs::uninstall_trace();
  EXPECT_EQ(obs::spans_dropped_total() - before, 6);
  // The same number is published to the registry for /metrics and
  // `madpipe stats`.
  const std::string text = obs::Registry::global().text();
  EXPECT_NE(text.find("madpipe_spans_dropped_total"), std::string::npos);
}

}  // namespace
}  // namespace madpipe
