#include "util/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace madpipe::par {
namespace {

TEST(Threading, DefaultWorkersPositive) { EXPECT_GE(default_workers(), 1u); }

TEST(Threading, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Threading, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Threading, SingleWorkerRunsSerially) {
  std::vector<std::size_t> order;
  parallel_for(0, 10, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(Threading, BlocksCoverRangeWithoutOverlap) {
  constexpr std::size_t n = 777;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_blocks(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      3);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Threading, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(Threading, MoreWorkersThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(0, 3, [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace madpipe::par
