#include "util/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace madpipe::par {
namespace {

TEST(Threading, DefaultWorkersPositive) { EXPECT_GE(default_workers(), 1u); }

TEST(Threading, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Threading, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Threading, SingleWorkerRunsSerially) {
  std::vector<std::size_t> order;
  parallel_for(0, 10, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(Threading, BlocksCoverRangeWithoutOverlap) {
  constexpr std::size_t n = 777;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_blocks(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      3);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Threading, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(Threading, MoreWorkersThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(0, 3, [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Threading, PoolRunsEveryBlockExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.threads(), 3u);
  constexpr std::size_t blocks = 200;
  std::vector<std::atomic<int>> hits(blocks);
  struct Ctx {
    std::vector<std::atomic<int>>* hits;
  } ctx{&hits};
  pool.run(
      blocks,
      [](void* raw, std::size_t block) {
        (*static_cast<Ctx*>(raw)->hits)[block].fetch_add(1);
      },
      &ctx);
  for (std::size_t i = 0; i < blocks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Threading, ZeroWorkerPoolRunsOnSubmitter) {
  ThreadPool pool(0);
  std::atomic<int> calls{0};
  struct Ctx {
    std::atomic<int>* calls;
  } ctx{&calls};
  pool.run(
      7,
      [](void* raw, std::size_t) {
        static_cast<Ctx*>(raw)->calls->fetch_add(1);
      },
      &ctx);
  EXPECT_EQ(calls.load(), 7);
}

TEST(Threading, PoolIsReusableAcrossRuns) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  struct Ctx {
    std::atomic<int>* total;
  } ctx{&total};
  for (int round = 0; round < 50; ++round) {
    pool.run(
        4,
        [](void* raw, std::size_t) {
          static_cast<Ctx*>(raw)->total->fetch_add(1);
        },
        &ctx);
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(Threading, NestedParallelForCompletes) {
  // Inner regions submit to the same shared pool the outer region occupies;
  // submitter participation guarantees progress regardless of pool size.
  std::vector<std::atomic<int>> hits(64);
  parallel_for(
      0, 8,
      [&](std::size_t outer) {
        parallel_for(
            0, 8,
            [&](std::size_t inner) { hits[outer * 8 + inner].fetch_add(1); },
            4);
      },
      4);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Threading, ConcurrentSubmittersShareThePool) {
  // Two external threads submit regions to the shared pool at once; the
  // FIFO job queue must serve both to completion.
  std::vector<std::atomic<int>> hits(2 * 500);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&hits, t] {
      parallel_for(
          0, 500,
          [&hits, t](std::size_t i) { hits[t * 500 + i].fetch_add(1); }, 4);
    });
  }
  for (std::thread& t : submitters) t.join();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(Threading, PoolPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(
                   100,
                   [](void*, std::size_t block) {
                     if (block % 3 == 0) throw std::runtime_error("boom");
                   },
                   nullptr),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> calls{0};
  struct Ctx {
    std::atomic<int>* calls;
  } ctx{&calls};
  pool.run(
      5,
      [](void* raw, std::size_t) {
        static_cast<Ctx*>(raw)->calls->fetch_add(1);
      },
      &ctx);
  EXPECT_EQ(calls.load(), 5);
}

}  // namespace
}  // namespace madpipe::par
