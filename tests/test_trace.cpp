#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "schedule/one_f_one_b.hpp"
#include "util/expect.hpp"

namespace madpipe {
namespace {

struct Fixture {
  Chain chain = make_uniform_chain(4, ms(5), ms(10), MB, MB, MB);
  Platform platform{2, 10 * GB, 1e6 * GB};
  Plan plan = *plan_one_f_one_b(
      make_contiguous_allocation(chain, {{1, 2}, {3, 4}}, 2), chain, platform);
};

TEST(ChromeTrace, IsWellFormedJson) {
  const Fixture f;
  const std::string doc =
      pattern_to_chrome_trace(f.plan.pattern, f.plan.allocation, f.chain, 3);
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ChromeTrace, NamesEveryResourceRow) {
  const Fixture f;
  const std::string doc =
      pattern_to_chrome_trace(f.plan.pattern, f.plan.allocation, f.chain, 2);
  EXPECT_NE(doc.find("\"name\":\"gpu0\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"gpu1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"link0-1\""), std::string::npos);
}

TEST(ChromeTrace, EmitsCompleteEventsWithBatchArgs) {
  const Fixture f;
  const std::string doc =
      pattern_to_chrome_trace(f.plan.pattern, f.plan.allocation, f.chain, 2);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"batch\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"comm\""), std::string::npos);
}

TEST(ChromeTrace, SkipsPreFillInstances) {
  // Ops with index shift h only appear once period ≥ h (batch ≥ 0): the
  // one-period export of a shifted op must be absent.
  const Fixture f;
  // Find an op with a positive shift; shrink the export to one period.
  bool has_shifted = false;
  for (const PatternOp& op : f.plan.pattern.ops) {
    if (op.shift > 0) has_shifted = true;
  }
  if (!has_shifted) GTEST_SKIP() << "plan has no shifted ops at this period";
  const std::string one =
      pattern_to_chrome_trace(f.plan.pattern, f.plan.allocation, f.chain, 1);
  const std::string four =
      pattern_to_chrome_trace(f.plan.pattern, f.plan.allocation, f.chain, 4);
  EXPECT_LT(one.size(), four.size());
}

TEST(ChromeTrace, RejectsZeroPeriods) {
  const Fixture f;
  EXPECT_THROW(
      pattern_to_chrome_trace(f.plan.pattern, f.plan.allocation, f.chain, 0),
      ContractViolation);
}

}  // namespace
}  // namespace madpipe
