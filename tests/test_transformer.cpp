// The LLM-scale transformer profile generator (DESIGN.md §14): preset
// registry, first-principles parameter/FLOP arithmetic, linearized chain
// shape, zoo dispatch (batch/device/coarsening applied like any network),
// and an end-to-end plan on a small transformer whose report memory peaks
// are bit-identical to the verifier's event sweep.
#include "models/transformer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "madpipe/planner.hpp"
#include "models/zoo.hpp"
#include "report/plan_report.hpp"
#include "util/expect.hpp"

namespace madpipe::models {
namespace {

/// A deliberately small shape: big enough to have distinct embed / block /
/// head layers, small enough that planner tests run in milliseconds.
TransformerConfig tiny_config() {
  TransformerConfig config;
  config.name = "tiny";
  config.blocks = 8;
  config.hidden = 256;
  config.seq_len = 128;
  config.vocab = 1000;
  config.batch = 2;
  config.split = 2;
  return config;
}

TEST(Transformer, PresetRegistryMatchesZooContract) {
  const std::vector<std::string> presets = list_transformer_presets();
  ASSERT_EQ(presets.size(), 3u);
  EXPECT_EQ(presets[0], "gpt2-xl");
  EXPECT_EQ(presets[1], "gpt3-13b-shape");
  EXPECT_EQ(presets[2], "llm-2k");
  for (const std::string& preset : presets) {
    EXPECT_TRUE(is_transformer_preset(preset)) << preset;
  }
  EXPECT_FALSE(is_transformer_preset("resnet50"));
  EXPECT_FALSE(is_transformer_preset("gpt2"));
  // The paper's four stay the paper's four — benches iterate list_networks()
  // at paper scale and must not silently pick up multi-GB transformers.
  EXPECT_EQ(list_networks().size(), 4u);
  EXPECT_THROW(transformer_preset("gpt5"), ContractViolation);
}

TEST(Transformer, ParameterCountsMatchTheStandardFormulas) {
  // 12·h² + 13·h per block, plus tied-shape embedding and head (V·h each).
  const TransformerConfig gpt2 = transformer_preset("gpt2-xl");
  const double h = 1600.0;
  const double expected =
      48.0 * (12.0 * h * h + 13.0 * h) + 2.0 * 50257.0 * h;
  EXPECT_DOUBLE_EQ(gpt2.parameters(), expected);
  // ~1.64B parameters: the published GPT-2 XL size to within a few percent.
  EXPECT_NEAR(gpt2.parameters(), 1.6e9, 0.05e9);
  // llm-2k is the DP stress shape: ~26B parameters.
  EXPECT_NEAR(transformer_preset("llm-2k").parameters(), 26e9, 1e9);
}

TEST(Transformer, ChainShapeIsEmbedBlocksHead) {
  const TransformerConfig config = tiny_config();
  const Chain chain = build_transformer(config);
  // 1 embedding + blocks·split sublayers + 1 head.
  ASSERT_EQ(chain.length(), config.blocks * config.split + 2);
  EXPECT_EQ(chain.layer(1).name, "embed");
  EXPECT_EQ(chain.layer(2).name, "blk0.0");
  EXPECT_EQ(chain.layer(3).name, "blk0.1");
  EXPECT_EQ(chain.layer(chain.length() - 1).name, "blk7.1");
  EXPECT_EQ(chain.layer(chain.length()).name, "head");

  // Input is int32 token ids; every interior boundary carries the
  // b·s·h·bytes_per_activation residual stream.
  EXPECT_DOUBLE_EQ(chain.activation(0), 2.0 * 128.0 * 4.0);
  const Bytes hidden_bytes = 2.0 * 128.0 * 256.0 * 2.0;
  for (int l = 1; l < chain.length(); ++l) {
    EXPECT_DOUBLE_EQ(chain.activation(l), hidden_bytes) << "layer " << l;
  }
  // The head's logits output is b·s·V·bytes_per_activation.
  EXPECT_DOUBLE_EQ(chain.activation(chain.length()),
                   2.0 * 128.0 * 1000.0 * 2.0);

  // All decoder sublayers are identical (uniform chain), and total weight
  // bytes equal parameters() · bytes_per_param.
  for (int l = 3; l < chain.length(); ++l) {
    EXPECT_EQ(chain.layer(l).forward_time, chain.layer(2).forward_time);
    EXPECT_EQ(chain.layer(l).weight_bytes, chain.layer(2).weight_bytes);
  }
  double weight_sum = 0.0;
  for (int l = 1; l <= chain.length(); ++l) {
    weight_sum += chain.layer(l).weight_bytes;
  }
  EXPECT_NEAR(weight_sum, config.parameters() * config.bytes_per_param,
              1e-6 * weight_sum);
}

TEST(Transformer, BatchScalesTimesAndActivationsLinearly) {
  TransformerConfig config = tiny_config();
  config.batch = 1;
  const Chain b1 = build_transformer(config);
  config.batch = 4;
  const Chain b4 = build_transformer(config);
  // Activations scale exactly; compute scales modulo the per-layer launch
  // overhead, which is batch-invariant.
  EXPECT_DOUBLE_EQ(b4.activation(1), 4.0 * b1.activation(1));
  EXPECT_DOUBLE_EQ(b4.activation(0), 4.0 * b1.activation(0));
  const double overhead = config.device.op_overhead;
  EXPECT_NEAR(b4.layer(2).forward_time - overhead,
              4.0 * (b1.layer(2).forward_time - overhead),
              1e-12);
  EXPECT_EQ(b4.layer(2).weight_bytes, b1.layer(2).weight_bytes);
}

TEST(Transformer, PresetLayerCountsReachLlmScale) {
  EXPECT_EQ(build_transformer(transformer_preset("gpt2-xl")).length(), 194);
  EXPECT_EQ(build_transformer(transformer_preset("gpt3-13b-shape")).length(),
            162);
  EXPECT_EQ(build_transformer(transformer_preset("llm-2k")).length(), 2050);
}

TEST(Transformer, RejectsDegenerateConfigs) {
  TransformerConfig config = tiny_config();
  config.blocks = 0;
  EXPECT_THROW(build_transformer(config), ContractViolation);
  config = tiny_config();
  config.split = 0;
  EXPECT_THROW(build_transformer(config), ContractViolation);
  // blocks·split + 2 past the profile layer limit.
  config = tiny_config();
  config.blocks = 40000;
  config.split = 2;
  EXPECT_THROW(build_transformer(config), ContractViolation);
}

TEST(Transformer, ZooDispatchAppliesBatchDeviceAndCoarsening) {
  NetworkConfig config;
  config.network = "gpt2-xl";
  config.batch = 4;
  config.image_size = 123;  // ignored for transformer presets

  TransformerConfig expected = transformer_preset("gpt2-xl");
  expected.batch = 4;
  expected.device = config.device;
  EXPECT_EQ(build_network(config), build_transformer(expected));

  // chain_length coarsens like any other network.
  config.chain_length = 24;
  const Chain coarse = build_network(config);
  EXPECT_EQ(coarse.length(), 24);
  // Coarsening preserves totals.
  const Chain full = build_transformer(expected);
  EXPECT_NEAR(coarse.total_compute(), full.total_compute(),
              1e-9 * full.total_compute());
}

TEST(Transformer, PlannedTinyTransformerPeaksBitMatchTheVerifier) {
  NetworkConfig network;
  network.network = "gpt2-xl";
  network.batch = 1;
  network.chain_length = 16;
  const Chain chain = build_network(network);
  // gpt2-xl carries ~3.3 GB of fp16 weights; the §3 model charges 3W per
  // stage, so 2 GPUs need ~5 GB each plus activations.
  const Platform platform{2, 8 * GB, 12 * GB};

  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::coarse();
  const std::optional<Plan> plan = plan_madpipe(chain, platform, options);
  ASSERT_TRUE(plan.has_value());

  const ValidationResult check =
      validate_pattern(plan->pattern, plan->allocation, chain, platform);
  ASSERT_TRUE(check.valid) << (check.errors.empty() ? "" : check.errors[0]);

  report::PlanReportOptions report_options;
  report_options.simulation_batches = 32;
  const report::PlanReport rep =
      report::build_plan_report(*plan, chain, platform, report_options);
  ASSERT_EQ(rep.memory.size(), 2u);
  for (int p = 0; p < platform.processors; ++p) {
    EXPECT_EQ(rep.memory[p].peak_bytes, check.processor_memory_peak[p])
        << "gpu" << p;
    EXPECT_LE(rep.memory[p].peak_bytes,
              platform.memory_per_processor * (1.0 + 1e-9));
  }
  EXPECT_GT(plan->period(), 0.0);
}

}  // namespace
}  // namespace madpipe::models
