#!/usr/bin/env python3
"""Validate a bench JSON document, dispatching on its "schema" field.

Supported schemas:
  * madpipe-bench-planner-v1 (bench_planner): structural checks and, with
    --reference, that every shared workload achieved the same period and
    allocation fingerprint as the committed baseline (the fast path must
    be a pure speedup, never a result change).
  * madpipe-bench-serve-v1 (bench_serve): every equivalence record must be
    bit-identical to direct planning, coalescing must collapse to a single
    planner run, and the cache-hit speedup must stay above the 100x floor;
    --reference additionally pins the equivalence periods/allocations to
    the committed baseline.
  * madpipe-bench-net-v1 (bench_net): the TCP front-end document — wire
    equivalence must be bit-identical to batch-mode serve, latency
    percentiles ordered and sane, overload accounting exact (served +
    rejected = frames, shed under an over-budget burst), and the hit
    throughput floor enforced on hosts with >= 8 hardware threads (the
    document records hardware_threads, like parallel_scaling).
  * madpipe-bench-solver-v1 (bench_solver): structural checks on the LP /
    MILP workload records; --reference pins each workload's solver status
    (optimal/feasible) — timings and node counts are machine-dependent,
    the verdicts are not.
  * madpipe-bench-fleet-v1 (bench_fleet): the fleet-simulator document —
    exact jobs-in == jobs-out accounting per policy, utilization and
    queueing percentiles sane, the affinity policy's cache hit-rate
    strictly above FIFO's, bit-identical determinism across reruns, and
    the calendar-queue events/s floor enforced on hosts with >= 8
    hardware threads.
  * madpipe-explain-v1 (madpipe explain --json): utilizations in [0, 1]
    with bubble = 1 - utilization, headroom = limit - peak exactly, the
    §3 decomposition terms summing to the peak within relative 1e-6,
    curves time-sorted and topping out at the peak, and the critical
    resource consistent with the utilization table; --reference pins the
    period and the per-GPU peaks bit-identically.

Field-by-field documentation of all documents lives in
docs/BENCH_SCHEMAS.md. Stdlib only; exits non-zero with a message on the
first violation.
"""

import argparse
import json
import math
import sys

PLANNER_SCHEMA = "madpipe-bench-planner-v1"
FLEET_SCHEMA = "madpipe-bench-fleet-v1"
SERVE_SCHEMA = "madpipe-bench-serve-v1"
NET_SCHEMA = "madpipe-bench-net-v1"
SOLVER_SCHEMA = "madpipe-bench-solver-v1"
EXPLAIN_SCHEMA = "madpipe-explain-v1"

# ISSUE acceptance floor: a cache hit must be at least this much faster than
# a cold plan of the same request.
SERVE_MIN_HIT_SPEEDUP = 100.0

WORKLOAD_FIELDS = {
    "name": str,
    "repeats": int,
    "wall_seconds": (int, float),
    "per_solve_seconds": (int, float),
    "feasible": bool,
    "period": (int, float),
    "phase1_period": (int, float),
    "allocation": str,
    "dp_states": int,
}

# Present only in documents produced after the wavefront-DP work; the
# committed seed predates them, so they are validated when present but
# never required.
OPTIONAL_STATS_FIELDS = {
    "memo_rehashes": int,
    "memo_rehashes_avoided": int,
}

STATS_FIELDS = {
    "dp_probes": int,
    "dp_states": int,
    "dp_state_visits": int,
    "memo_probes": int,
    "memo_child_lookups": int,
    "memo_hits": int,
    "memo_max_load_factor": (int, float),
    "transition_lookups": int,
    "transition_hits": int,
    "state_budget_hits": int,
    "phase1_probes": int,
    "phase2_probes": int,
    "speculative_probes": int,
    "speculative_hits": int,
    "phase1_wall_seconds": (int, float),
    "phase2_wall_seconds": (int, float),
}


def fail(message):
    print(f"check_bench_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, fields, where):
    for key, expected in fields.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        value = obj[key]
        # bool is an int subclass in Python; don't let it satisfy int fields.
        if expected is int and isinstance(value, bool):
            fail(f"{where}: key '{key}' is a bool, expected int")
        if not isinstance(value, expected):
            fail(f"{where}: key '{key}' has type {type(value).__name__}")


# Perf floors only bind on hosts with at least this many hardware threads:
# a 1-core CI runner cannot demonstrate scaling or sustained throughput, but
# it also must not fail for that. Every gated floor in this file goes
# through enforce_hardware_gated_floor so the gating rule is written once.
FLOOR_MIN_HARDWARE_THREADS = 8


def enforce_hardware_gated_floor(value, floor, hardware, where, what,
                                 smoke=False, unit=""):
    """Fail when `value` is below `floor` — but only when the host can be
    held to it: smoke runs and hosts with fewer than
    FLOOR_MIN_HARDWARE_THREADS hardware threads are exempt. Shared by the
    planner parallel_scaling, net throughput, and fleet engine checkers."""
    if smoke or hardware < FLOOR_MIN_HARDWARE_THREADS:
        return
    if value < floor:
        fail(f"{where}: {what} {value:g}{unit} below the {floor:g}{unit} "
             f"floor (hardware_threads={hardware})")


SCALING_POINT_FIELDS = {
    "threads": int,
    "dp_probe_seconds": (int, float),
    "speedup": (int, float),
    "feasible": bool,
    "period": (int, float),
    "allocation": str,
    "dp_states": int,
}

# ISSUE acceptance floor: the wavefront DP probe must be at least this much
# faster at 8 threads than at 1 — enforceable only on hosts that actually
# have 8 hardware threads (the document records hardware_threads for this).
SCALING_MIN_SPEEDUP_8T = 2.5
# Noise margin for the monotonicity check: adding threads may never cost
# more than this fraction of the previous point's speedup.
SCALING_MONOTONE_SLACK = 0.10


def check_parallel_scaling(doc, path):
    """Validate the wavefront-DP scaling table (DESIGN.md §11).

    Bit-identity of the period/allocation/state count across thread counts
    is unconditional — the shard decomposition defines the result, not the
    host. Speedup expectations bind only up to the recorded
    hardware_threads: a 1-core CI runner cannot demonstrate scaling, but it
    also must not fail for that.
    """
    scaling = doc.get("parallel_scaling")
    if scaling is None:
        return  # documents from before the wavefront engine (the seed)
    if not isinstance(scaling, dict):
        fail(f"{path}: parallel_scaling must be an object")
    hardware = scaling.get("hardware_threads")
    if not isinstance(hardware, int) or isinstance(hardware, bool) \
            or hardware < 1:
        fail(f"{path}: parallel_scaling.hardware_threads must be an int >= 1")
    workloads = scaling.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail(f"{path}: parallel_scaling.workloads must be a non-empty array")
    for record in workloads:
        name = record.get("name", "?")
        where = f"{path}: parallel_scaling {name!r}"
        if not isinstance(record.get("name"), str):
            fail(f"{where}: missing name")
        points = record.get("points")
        if not isinstance(points, list) or not points:
            fail(f"{where}: points must be a non-empty array")
        base = points[0]
        previous_threads = 0
        previous_speedup = None
        for point in points:
            check_fields(point, SCALING_POINT_FIELDS, where)
            threads = point["threads"]
            if threads <= previous_threads:
                fail(f"{where}: thread counts must be strictly increasing")
            previous_threads = threads
            if point["dp_probe_seconds"] <= 0:
                fail(f"{where}: t{threads} has non-positive dp_probe_seconds")
            # The shard decomposition, not the pool, defines the result:
            # every point must be bit-identical to the 1-thread point.
            if point["feasible"] != base["feasible"]:
                fail(f"{where}: t{threads} feasibility differs from t1")
            if point["period"] != base["period"]:
                fail(f"{where}: t{threads} period {point['period']!r} != t1 "
                     f"{base['period']!r} (must be bit-identical)")
            if point["allocation"] != base["allocation"]:
                fail(f"{where}: t{threads} allocation differs from t1")
            if point["dp_states"] != base["dp_states"]:
                fail(f"{where}: t{threads} dp_states differs from t1")
            # Speedup rules, gated on the host's real parallelism.
            if threads == 1 and point["speedup"] != 1.0:
                fail(f"{where}: the 1-thread speedup must be exactly 1.0")
            if threads <= hardware:
                if previous_speedup is not None and \
                        point["speedup"] < previous_speedup * \
                        (1.0 - SCALING_MONOTONE_SLACK):
                    fail(f"{where}: speedup degrades at t{threads} "
                         f"({point['speedup']:.2f} after "
                         f"{previous_speedup:.2f})")
                previous_speedup = point["speedup"]
                if threads >= FLOOR_MIN_HARDWARE_THREADS:
                    enforce_hardware_gated_floor(
                        point["speedup"], SCALING_MIN_SPEEDUP_8T, hardware,
                        where, f"t{threads} speedup", unit="x")
    names = [record["name"] for record in workloads]
    if len(set(names)) != len(names):
        fail(f"{path}: duplicate parallel_scaling workload names")
    print(f"check_bench_schema: parallel_scaling OK ({len(workloads)} "
          f"workloads, hardware_threads={hardware})")


LLM_SCALE_FIELDS = {
    "hardware_threads": int,
    "network": str,
    "layers": int,
    "gpus": int,
    "memory_gb": (int, float),
    "full_dp_probe_seconds": (int, float),
    "full_dp_states": int,
    "full_feasible": bool,
    "full_period": (int, float),
    "state_budget_hit": bool,
    "coarsened_layers": int,
    "plan_seconds": (int, float),
    "plan_feasible": bool,
    "plan_period": (int, float),
    "speedup_vs_sequential": (int, float),
    "serve_network": str,
    "serve_cold_seconds": (int, float),
    "serve_hit_seconds": (int, float),
    "serve_hit_speedup": (int, float),
}

# ISSUE acceptance criteria for the LLM-scale record: the DP must complete a
# >= 2000-layer transformer chain at P = 64 feasibly, without tripping the
# state budget. These are result-shaped, so they are never gated.
LLM_SCALE_MIN_LAYERS = 2000
LLM_SCALE_MIN_GPUS = 64
# The coarsened end-to-end plan's speedup is a period ratio (deterministic
# planner output, not wall clock), so this floor is ungated too.
LLM_SCALE_MIN_COARSE_SPEEDUP = 8.0
# The serve hit speedup IS wall clock — hardware-gated like the other
# timing floors.
LLM_SCALE_MIN_HIT_SPEEDUP = 100.0


def check_llm_scale(doc, path):
    """Validate the LLM-scale record: a full-depth transformer DP probe,
    the coarsened planning recipe, and a serve cold/hit pair. Optional —
    documents from before the transformer generator simply lack it."""
    llm = doc.get("llm_scale")
    if llm is None:
        return
    if not isinstance(llm, dict):
        fail(f"{path}: llm_scale must be an object")
    where = f"{path}: llm_scale"
    check_fields(llm, LLM_SCALE_FIELDS, where)
    hardware = llm["hardware_threads"]
    if hardware < 1:
        fail(f"{where}: hardware_threads must be >= 1")
    if llm["layers"] < LLM_SCALE_MIN_LAYERS:
        fail(f"{where}: layers {llm['layers']} below the "
             f"{LLM_SCALE_MIN_LAYERS}-layer floor")
    if llm["gpus"] < LLM_SCALE_MIN_GPUS:
        fail(f"{where}: gpus {llm['gpus']} below the "
             f"{LLM_SCALE_MIN_GPUS}-GPU floor")
    if not llm["full_feasible"]:
        fail(f"{where}: full-depth DP probe was infeasible")
    if llm["state_budget_hit"]:
        fail(f"{where}: full-depth DP probe hit the state budget")
    if not (llm["full_period"] > 0 and math.isfinite(llm["full_period"])):
        fail(f"{where}: full_period must be positive and finite")
    if llm["full_dp_states"] < 1 or llm["full_dp_probe_seconds"] <= 0:
        fail(f"{where}: full-depth probe states/timing must be positive")
    if not llm["plan_feasible"]:
        fail(f"{where}: coarsened end-to-end plan was infeasible")
    if llm["coarsened_layers"] < llm["gpus"]:
        fail(f"{where}: coarsened_layers {llm['coarsened_layers']} below "
             f"gpus {llm['gpus']} (one stage per GPU minimum)")
    if llm["speedup_vs_sequential"] < LLM_SCALE_MIN_COARSE_SPEEDUP:
        fail(f"{where}: coarsened speedup {llm['speedup_vs_sequential']:.2f}x "
             f"below the {LLM_SCALE_MIN_COARSE_SPEEDUP:g}x floor "
             "(period ratio, ungated)")
    if llm["serve_cold_seconds"] <= 0 or llm["serve_hit_seconds"] <= 0:
        fail(f"{where}: serve timings must be positive")
    enforce_hardware_gated_floor(llm["serve_hit_speedup"],
                                 LLM_SCALE_MIN_HIT_SPEEDUP, hardware, where,
                                 "serve hit speedup", unit="x")
    print(f"check_bench_schema: llm_scale OK ({llm['layers']} layers at "
          f"P={llm['gpus']}, {llm['full_dp_states']} states, coarsened "
          f"{llm['speedup_vs_sequential']:.1f}x)")


def check_planner_document(doc, path):
    if doc.get("schema") != PLANNER_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"expected {PLANNER_SCHEMA!r}")
    if not isinstance(doc.get("planner_stats_instrumented"), bool):
        fail(f"{path}: planner_stats_instrumented must be a bool")
    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail(f"{path}: workloads must be a non-empty array")
    for record in workloads:
        where = f"{path}: workload {record.get('name', '?')!r}"
        check_fields(record, WORKLOAD_FIELDS, where)
        if record["repeats"] < 1:
            fail(f"{where}: repeats must be >= 1")
        if record["per_solve_seconds"] < 0 or record["wall_seconds"] < 0:
            fail(f"{where}: negative timing")
        if record["feasible"]:
            if not (record["period"] > 0 and math.isfinite(record["period"])):
                fail(f"{where}: feasible but period is {record['period']}")
            if not record["allocation"]:
                fail(f"{where}: feasible but allocation fingerprint is empty")
        if doc["planner_stats_instrumented"]:
            if "stats" not in record:
                fail(f"{where}: instrumented build but no stats block")
            check_fields(record["stats"], STATS_FIELDS, where + " stats")
            present = {key: expected
                       for key, expected in OPTIONAL_STATS_FIELDS.items()
                       if key in record["stats"]}
            check_fields(record["stats"], present, where + " stats")
    names = [record["name"] for record in workloads]
    if len(set(names)) != len(names):
        fail(f"{path}: duplicate workload names")
    check_parallel_scaling(doc, path)
    check_llm_scale(doc, path)
    return {record["name"]: record for record in workloads}


def check_planner_reference(current, reference):
    shared = sorted(set(current) & set(reference))
    if not shared:
        fail("no workloads shared with the reference file")
    for name in shared:
        cur, ref = current[name], reference[name]
        if cur["feasible"] != ref["feasible"]:
            fail(f"{name}: feasibility {cur['feasible']} != reference "
                 f"{ref['feasible']}")
        if not cur["feasible"]:
            continue
        if cur["period"] != ref["period"]:
            fail(f"{name}: period {cur['period']!r} != reference "
                 f"{ref['period']!r} (results must be bit-identical)")
        if cur["allocation"] != ref["allocation"]:
            fail(f"{name}: allocation {cur['allocation']!r} != reference "
                 f"{ref['allocation']!r}")
    print(f"check_bench_schema: {len(shared)} workloads match the reference "
          "(periods and allocations identical)")


SERVE_EQUIVALENCE_FIELDS = {
    "name": str,
    "cache": str,
    "identical": bool,
    "serve_period": (int, float),
    "direct_period": (int, float),
    "serve_allocation": str,
    "direct_allocation": str,
}

SERVE_SUMMARY_FIELDS = {
    "cold_plan_seconds": (int, float),
    "serve_miss_seconds": (int, float),
    "hit_p50_seconds": (int, float),
    "hit_p99_seconds": (int, float),
    "hit_speedup": (int, float),
}

SERVE_STATS_FIELDS = {
    "requests": int,
    "hits": int,
    "scaled_hits": int,
    "misses": int,
    "coalesced": int,
    "rejected": int,
    "degraded": int,
    "errors": int,
    "planner_runs": int,
    "evictions": int,
    "expirations": int,
    "key_collisions": int,
    "cache_entries": int,
    "cache_bytes": int,
}


def check_serve_document(doc, path):
    if doc.get("schema") != SERVE_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"expected {SERVE_SCHEMA!r}")
    equivalence = doc.get("equivalence")
    if not isinstance(equivalence, list) or not equivalence:
        fail(f"{path}: equivalence must be a non-empty array")
    for record in equivalence:
        where = f"{path}: equivalence {record.get('name', '?')!r}"
        check_fields(record, SERVE_EQUIVALENCE_FIELDS, where)
        if not record["identical"]:
            fail(f"{where}: served plan differs from direct planning")
        if record["serve_period"] != record["direct_period"]:
            fail(f"{where}: periods differ despite identical=true")
        if record["serve_allocation"] != record["direct_allocation"]:
            fail(f"{where}: allocations differ despite identical=true")
    names = [record["name"] for record in equivalence]
    if len(set(names)) != len(names):
        fail(f"{path}: duplicate equivalence record names")

    coalesce = doc.get("coalesce")
    if not isinstance(coalesce, dict):
        fail(f"{path}: missing coalesce block")
    check_fields(coalesce, {"clients": int, "planner_runs": int,
                            "coalesced": int}, f"{path}: coalesce")
    if coalesce["planner_runs"] != 1:
        fail(f"{path}: coalesce ran the planner {coalesce['planner_runs']} "
             "times; identical concurrent requests must collapse to 1")
    if coalesce["coalesced"] != coalesce["clients"] - 1:
        fail(f"{path}: {coalesce['clients']} clients should report "
             f"{coalesce['clients'] - 1} coalesced, "
             f"got {coalesce['coalesced']}")

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        fail(f"{path}: missing summary block")
    check_fields(summary, SERVE_SUMMARY_FIELDS, f"{path}: summary")
    for key in SERVE_SUMMARY_FIELDS:
        if not (summary[key] > 0 and math.isfinite(summary[key])):
            fail(f"{path}: summary {key} must be positive and finite")
    # Smoke runs still must clear the floor: a hit is a lookup, not a plan.
    if summary["hit_speedup"] < SERVE_MIN_HIT_SPEEDUP:
        fail(f"{path}: hit_speedup {summary['hit_speedup']:.1f} is below "
             f"the {SERVE_MIN_HIT_SPEEDUP:.0f}x floor")

    stats = doc.get("stats")
    if not isinstance(stats, dict):
        fail(f"{path}: missing stats block")
    check_fields(stats, SERVE_STATS_FIELDS, f"{path}: stats")
    if stats["errors"] != 0:
        fail(f"{path}: serve reported {stats['errors']} errors")
    return {record["name"]: record for record in equivalence}


def check_serve_reference(current, reference):
    shared = sorted(set(current) & set(reference))
    if not shared:
        fail("no equivalence records shared with the reference file")
    for name in shared:
        cur, ref = current[name], reference[name]
        if cur["serve_period"] != ref["serve_period"]:
            fail(f"{name}: period {cur['serve_period']!r} != reference "
                 f"{ref['serve_period']!r} (results must be bit-identical)")
        if cur["serve_allocation"] != ref["serve_allocation"]:
            fail(f"{name}: allocation {cur['serve_allocation']!r} != "
                 f"reference {ref['serve_allocation']!r}")
    print(f"check_bench_schema: {len(shared)} equivalence records match the "
          "reference (periods and allocations identical)")


# ISSUE acceptance floor: pipelined hit traffic over loopback TCP must
# sustain at least this many requests/second — enforceable only on hosts
# with real parallelism (the event loop, dispatch pool, and client all
# share the machine), so it is gated on recorded hardware_threads like
# SCALING_MIN_SPEEDUP_8T.
NET_MIN_HIT_RPS_8T = 100_000.0
# A cache hit over loopback is a lookup plus two socket hops, never a
# planning run: p99 past this bound means the wire path is broken.
NET_MAX_HIT_P99_SECONDS = 0.1
# Arming tail sampling must not cost serving throughput: the armed /
# disarmed ratio of the fixed hit run has to stay near 1. The 0.8 floor
# allows ordinary run-to-run noise while catching a sampler that drags the
# hot path; gated on hardware_threads like the throughput floor (the
# signal is meaningless on an oversubscribed host).
NET_MIN_TAIL_SAMPLING_RATIO_8T = 0.8
# An admin /metrics scrape is one short HTTP exchange over loopback; a p50
# past this bound means the endpoint is blocking on the data plane.
NET_MAX_ADMIN_SCRAPE_P50_SECONDS = 0.1

NET_THROUGHPUT_FIELDS = {
    "clients": int,
    "window": int,
    "requests": int,
    "wall_seconds": (int, float),
    "requests_per_second": (int, float),
}

NET_SERVER_STATS_FIELDS = {
    "accepted": int,
    "closed": int,
    "frames": int,
    "responses": int,
    "shed_rate": int,
    "shed_depth": int,
    "protocol_errors": int,
    "oversized": int,
    "bytes_in": int,
    "bytes_out": int,
}


def check_net_document(doc, path):
    if doc.get("schema") != NET_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"expected {NET_SCHEMA!r}")
    hardware = doc.get("hardware_threads")
    if not isinstance(hardware, int) or isinstance(hardware, bool) \
            or hardware < 1:
        fail(f"{path}: hardware_threads must be an int >= 1")
    smoke = doc.get("smoke")
    if not isinstance(smoke, bool):
        fail(f"{path}: smoke must be a bool")

    equivalence = doc.get("equivalence")
    if not isinstance(equivalence, list) or not equivalence:
        fail(f"{path}: equivalence must be a non-empty array")
    for record in equivalence:
        where = f"{path}: equivalence {record.get('name', '?')!r}"
        check_fields(record, {"name": str, "cache": str, "identical": bool},
                     where)
        if not record["identical"]:
            fail(f"{where}: wire response differs from batch-mode serve")
    by_name = {record["name"]: record for record in equivalence}
    if len(by_name) != len(equivalence):
        fail(f"{path}: duplicate equivalence record names")
    if by_name.get("net_miss", {}).get("cache") != "miss":
        fail(f"{path}: net_miss must report cache 'miss'")
    if by_name.get("net_hit", {}).get("cache") != "hit":
        fail(f"{path}: net_hit must report cache 'hit'")

    latency = doc.get("latency")
    if not isinstance(latency, dict):
        fail(f"{path}: missing latency block")
    check_fields(latency, {"p50_seconds": (int, float),
                           "p95_seconds": (int, float),
                           "p99_seconds": (int, float)}, f"{path}: latency")
    p50, p95, p99 = (latency["p50_seconds"], latency["p95_seconds"],
                     latency["p99_seconds"])
    if not (0 < p50 <= p95 <= p99) or not math.isfinite(p99):
        fail(f"{path}: latency percentiles must satisfy 0 < p50 <= p95 <= "
             f"p99 (got {p50!r}, {p95!r}, {p99!r})")
    if p99 > NET_MAX_HIT_P99_SECONDS:
        fail(f"{path}: hit p99 {p99:.4f}s exceeds the "
             f"{NET_MAX_HIT_P99_SECONDS}s sanity bound")

    throughput = doc.get("throughput")
    if not isinstance(throughput, list) or not throughput:
        fail(f"{path}: throughput must be a non-empty array")
    previous_clients = 0
    peak = 0.0
    for record in throughput:
        where = f"{path}: throughput {record.get('clients', '?')} clients"
        check_fields(record, NET_THROUGHPUT_FIELDS, where)
        if record["clients"] <= previous_clients:
            fail(f"{where}: client counts must be strictly increasing")
        previous_clients = record["clients"]
        if record["window"] < 1 or record["requests"] < 1:
            fail(f"{where}: window and requests must be >= 1")
        if record["requests_per_second"] <= 0:
            fail(f"{where}: non-positive requests_per_second")
        peak = max(peak, record["requests_per_second"])
    # The throughput floor binds only where the host can deliver it: the
    # loop thread, dispatch pool, and load generator share the machine.
    enforce_hardware_gated_floor(peak, NET_MIN_HIT_RPS_8T, hardware, path,
                                 "peak hit throughput", smoke=smoke,
                                 unit=" req/s")

    mixed = doc.get("mixed")
    if not isinstance(mixed, dict):
        fail(f"{path}: missing mixed block")
    check_fields(mixed, {"requests": int, "hits": int, "misses": int,
                         "wall_seconds": (int, float),
                         "requests_per_second": (int, float)},
                 f"{path}: mixed")
    if mixed["hits"] + mixed["misses"] > mixed["requests"]:
        fail(f"{path}: mixed hits + misses exceed total requests")
    if mixed["hits"] < 1 or mixed["misses"] < 1:
        fail(f"{path}: the mixed phase must contain both hits and misses")

    overload = doc.get("overload")
    if not isinstance(overload, dict):
        fail(f"{path}: missing overload block")
    check_fields(overload, {"frames": int, "tokens_per_second": (int, float),
                            "token_burst": (int, float), "served": int,
                            "rejected": int, "shed_fraction": (int, float)},
                 f"{path}: overload")
    if overload["served"] + overload["rejected"] != overload["frames"]:
        fail(f"{path}: overload served + rejected != frames "
             f"(every frame must be answered, shed or not)")
    if not 0.0 <= overload["shed_fraction"] <= 1.0:
        fail(f"{path}: overload shed_fraction outside [0, 1]")
    if overload["rejected"] < 1:
        fail(f"{path}: an over-budget burst must shed at least one frame")
    expected = overload["rejected"] / overload["frames"]
    if abs(overload["shed_fraction"] - expected) > 1e-9:
        fail(f"{path}: shed_fraction {overload['shed_fraction']!r} != "
             f"rejected/frames {expected!r}")

    admin = doc.get("admin")
    if not isinstance(admin, dict):
        fail(f"{path}: missing admin block")
    check_fields(admin, {"scrapes": int,
                         "scrape_p50_seconds": (int, float),
                         "scrape_p95_seconds": (int, float),
                         "metrics_bytes": int,
                         "healthz_ok": bool}, f"{path}: admin")
    if admin["scrapes"] < 1 or admin["metrics_bytes"] < 1:
        fail(f"{path}: admin scrapes and metrics_bytes must be >= 1")
    if not (0 < admin["scrape_p50_seconds"] <= admin["scrape_p95_seconds"]):
        fail(f"{path}: admin scrape percentiles must satisfy "
             f"0 < p50 <= p95")
    if admin["scrape_p50_seconds"] > NET_MAX_ADMIN_SCRAPE_P50_SECONDS:
        fail(f"{path}: admin scrape p50 {admin['scrape_p50_seconds']:.4f}s "
             f"exceeds the {NET_MAX_ADMIN_SCRAPE_P50_SECONDS}s sanity bound")
    if not admin["healthz_ok"]:
        fail(f"{path}: /healthz did not answer ok on a live server")

    tail = doc.get("tail_sampling")
    if not isinstance(tail, dict):
        fail(f"{path}: missing tail_sampling block")
    check_fields(tail, {"requests": int,
                        "baseline_requests_per_second": (int, float),
                        "armed_requests_per_second": (int, float),
                        "throughput_ratio": (int, float)},
                 f"{path}: tail_sampling")
    if tail["requests"] < 1:
        fail(f"{path}: tail_sampling requests must be >= 1")
    if tail["baseline_requests_per_second"] <= 0 \
            or tail["armed_requests_per_second"] <= 0:
        fail(f"{path}: tail_sampling rates must be positive")
    expected_ratio = (tail["armed_requests_per_second"]
                      / tail["baseline_requests_per_second"])
    if abs(tail["throughput_ratio"] - expected_ratio) > 1e-6:
        fail(f"{path}: tail_sampling throughput_ratio "
             f"{tail['throughput_ratio']!r} != armed/baseline "
             f"{expected_ratio!r}")
    enforce_hardware_gated_floor(tail["throughput_ratio"],
                                 NET_MIN_TAIL_SAMPLING_RATIO_8T, hardware,
                                 path, "tail-sampling throughput ratio",
                                 smoke=smoke, unit="x")

    stats = doc.get("server_stats")
    if not isinstance(stats, dict):
        fail(f"{path}: missing server_stats block")
    check_fields(stats, NET_SERVER_STATS_FIELDS, f"{path}: server_stats")
    if stats["protocol_errors"] != 0:
        fail(f"{path}: the bench sent only well-formed frames but the "
             f"server counted {stats['protocol_errors']} protocol errors")
    if stats["frames"] != stats["responses"]:
        fail(f"{path}: server frames {stats['frames']} != responses "
             f"{stats['responses']} (every frame earns exactly one line)")
    return by_name


def check_net_reference(current, reference):
    shared = sorted(set(current) & set(reference))
    if not shared:
        fail("no equivalence records shared with the reference file")
    for name in shared:
        if current[name]["cache"] != reference[name]["cache"]:
            fail(f"{name}: cache outcome {current[name]['cache']!r} != "
                 f"reference {reference[name]['cache']!r}")
    print(f"check_bench_schema: {len(shared)} net equivalence records match "
          "the reference")


SOLVER_WORKLOAD_FIELDS = {
    "name": str,
    "repeats": int,
    "wall_seconds": (int, float),
    "per_solve_seconds": (int, float),
    "nodes": int,
    "nodes_per_sec": (int, float),
    "pivots": int,
    "pivots_per_sec": (int, float),
    "warm_start_hits": int,
    "status": str,
}

SOLVER_STATUSES = {"optimal", "feasible", "infeasible", "unbounded", "limit",
                   "phase1-infeasible", "?"}


def check_solver_document(doc, path):
    if doc.get("schema") != SOLVER_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"expected {SOLVER_SCHEMA!r}")
    if not isinstance(doc.get("solver_stats_instrumented"), bool):
        fail(f"{path}: solver_stats_instrumented must be a bool")
    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail(f"{path}: workloads must be a non-empty array")
    for record in workloads:
        where = f"{path}: workload {record.get('name', '?')!r}"
        check_fields(record, SOLVER_WORKLOAD_FIELDS, where)
        if record["repeats"] < 1:
            fail(f"{where}: repeats must be >= 1")
        if record["per_solve_seconds"] < 0 or record["wall_seconds"] < 0:
            fail(f"{where}: negative timing")
        if record["status"] not in SOLVER_STATUSES:
            fail(f"{where}: unknown status {record['status']!r}")
    names = [record["name"] for record in workloads]
    if len(set(names)) != len(names):
        fail(f"{path}: duplicate workload names")
    return {record["name"]: record for record in workloads}


def check_solver_reference(current, reference):
    shared = sorted(set(current) & set(reference))
    if not shared:
        fail("no workloads shared with the reference file")
    for name in shared:
        cur, ref = current[name], reference[name]
        if cur["status"] != ref["status"]:
            fail(f"{name}: status {cur['status']!r} != reference "
                 f"{ref['status']!r}")
    print(f"check_bench_schema: {len(shared)} workloads match the reference "
          "(solver statuses identical)")


EXPLAIN_STAGE_FIELDS = {
    "stage": int,
    "first_layer": int,
    "last_layer": int,
    "processor": int,
    "forward_seconds": (int, float),
    "backward_seconds": (int, float),
    "weight_bytes": (int, float),
    "activation_bytes_per_batch": (int, float),
    "max_in_flight": int,
}

EXPLAIN_RESOURCE_FIELDS = {
    "resource": str,
    "busy_seconds": (int, float),
    "utilization": (int, float),
    "bubble_fraction": (int, float),
}

EXPLAIN_MEMORY_FIELDS = {
    "gpu": int,
    "weights_bytes": (int, float),
    "scratch_bytes": (int, float),
    "comm_buffers_bytes": (int, float),
    "activations_peak_bytes": (int, float),
    "peak_bytes": (int, float),
    "limit_bytes": (int, float),
    "headroom_bytes": (int, float),
    "binding_term": str,
}

EXPLAIN_BINDING_TERMS = {"weights", "activations", "comm_buffers"}


def check_explain_document(doc, path):
    if doc.get("schema") != EXPLAIN_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"expected {EXPLAIN_SCHEMA!r}")
    check_fields(doc, {"planner": str, "period_seconds": (int, float),
                       "phase1_period_seconds": (int, float),
                       "num_stages": int, "gpus": int,
                       "critical_resource": str,
                       "critical_utilization": (int, float),
                       "mean_gpu_utilization": (int, float),
                       "simulated": bool}, path)
    period = doc["period_seconds"]
    if not (period > 0 and math.isfinite(period)):
        fail(f"{path}: period_seconds must be positive and finite")

    stages = doc.get("stages")
    if not isinstance(stages, list) or len(stages) != doc["num_stages"]:
        fail(f"{path}: stages must be an array of num_stages records")
    for record in stages:
        where = f"{path}: stage {record.get('stage', '?')}"
        check_fields(record, EXPLAIN_STAGE_FIELDS, where)
        if record["max_in_flight"] < 1:
            fail(f"{where}: max_in_flight must be >= 1")
        if not 0 <= record["processor"] < doc["gpus"]:
            fail(f"{where}: processor out of range")

    resources = doc.get("resources")
    if not isinstance(resources, list) or len(resources) < doc["gpus"]:
        fail(f"{path}: resources must list at least every GPU")
    utilization_of = {}
    for record in resources:
        where = f"{path}: resource {record.get('resource', '?')!r}"
        check_fields(record, EXPLAIN_RESOURCE_FIELDS, where)
        if not 0.0 <= record["utilization"] <= 1.0:
            fail(f"{where}: utilization outside [0, 1]")
        if abs(record["utilization"] + record["bubble_fraction"] - 1.0) > 1e-9:
            fail(f"{where}: utilization + bubble_fraction != 1")
        utilization_of[record["resource"]] = record["utilization"]
    critical = doc["critical_resource"]
    if critical not in utilization_of:
        fail(f"{path}: critical_resource {critical!r} not in resources")
    if utilization_of[critical] != doc["critical_utilization"]:
        fail(f"{path}: critical_utilization does not match the table")
    if doc["critical_utilization"] < max(utilization_of.values()):
        fail(f"{path}: critical_resource is not the argmax utilization")
    if not 0.0 <= doc["mean_gpu_utilization"] <= 1.0:
        fail(f"{path}: mean_gpu_utilization outside [0, 1]")

    memory = doc.get("memory")
    if not isinstance(memory, list) or len(memory) != doc["gpus"]:
        fail(f"{path}: memory must have one record per GPU")
    for record in memory:
        where = f"{path}: memory gpu{record.get('gpu', '?')}"
        check_fields(record, EXPLAIN_MEMORY_FIELDS, where)
        peak, limit = record["peak_bytes"], record["limit_bytes"]
        if record["headroom_bytes"] != limit - peak:
            fail(f"{where}: headroom_bytes != limit_bytes - peak_bytes")
        term_sum = (record["weights_bytes"] + record["scratch_bytes"] +
                    record["comm_buffers_bytes"] +
                    record["activations_peak_bytes"])
        if abs(term_sum - peak) > 1e-6 * max(1.0, abs(peak)):
            fail(f"{where}: decomposition sums to {term_sum!r}, "
                 f"peak is {peak!r}")
        if record["binding_term"] not in EXPLAIN_BINDING_TERMS:
            fail(f"{where}: unknown binding_term "
                 f"{record['binding_term']!r}")
        curve = record.get("curve")
        if not isinstance(curve, list) or not curve:
            fail(f"{where}: curve must be a non-empty array")
        previous = -1.0
        curve_max = 0.0
        for point in curve:
            check_fields(point, {"time_seconds": (int, float),
                                 "bytes": (int, float)}, where + " curve")
            if not 0.0 <= point["time_seconds"] < period:
                fail(f"{where}: curve time outside [0, period)")
            if point["time_seconds"] <= previous:
                fail(f"{where}: curve not strictly time-sorted")
            previous = point["time_seconds"]
            curve_max = max(curve_max, point["bytes"])
        if curve_max != peak:
            fail(f"{where}: curve max {curve_max!r} != peak {peak!r}")

    if doc["simulated"]:
        check_fields(doc, {"simulated_period_seconds": (int, float),
                           "period_delta_fraction": (int, float)}, path)
        # The ASAP execution of a valid pattern never runs slower than the
        # pattern's own period (float noise aside).
        if doc["period_delta_fraction"] > 1e-6:
            fail(f"{path}: simulated period exceeds the analytic period "
                 f"(delta {doc['period_delta_fraction']!r})")
    return {f"gpu{record['gpu']}": record for record in memory} | {
        "__period__": {"period_seconds": period,
                       "num_stages": doc["num_stages"]}}


def check_explain_reference(current, reference):
    shared = sorted(set(current) & set(reference))
    if not shared:
        fail("nothing shared with the reference file")
    for name in shared:
        cur, ref = current[name], reference[name]
        if name == "__period__":
            if cur["period_seconds"] != ref["period_seconds"]:
                fail(f"period {cur['period_seconds']!r} != reference "
                     f"{ref['period_seconds']!r} (must be bit-identical)")
            if cur["num_stages"] != ref["num_stages"]:
                fail(f"num_stages {cur['num_stages']} != reference "
                     f"{ref['num_stages']}")
            continue
        if cur["peak_bytes"] != ref["peak_bytes"]:
            fail(f"{name}: peak_bytes {cur['peak_bytes']!r} != reference "
                 f"{ref['peak_bytes']!r} (must be bit-identical)")
    print(f"check_bench_schema: {len(shared)} explain records match the "
          "reference (period and peaks identical)")


# ISSUE acceptance floor: the calendar-queue engine must sustain at least
# this many push+pop pairs per second in the churn microbench — gated on
# recorded hardware_threads like the other perf floors (the engine is
# single-threaded, but slow shared CI cores are exempted the same way).
FLEET_MIN_ENGINE_EPS_8T = 500_000.0

FLEET_POLICY_FIELDS = {
    "policy": str,
    "jobs_in": int,
    "completed": int,
    "failed": int,
    "stranded": int,
    "accounting_exact": bool,
    "makespan_s": (int, float),
    "utilization": (int, float),
    "wait_mean_s": (int, float),
    "wait_p50_s": (int, float),
    "wait_p99_s": (int, float),
    "wait_max_s": (int, float),
    "plans": int,
    "cache_hits": int,
    "cache_misses": int,
    "cache_hit_rate": (int, float),
    "replans": int,
    "preemptions": int,
    "deadlines_met": int,
    "deadlines_missed": int,
    "events_dispatched": int,
    "event_log_hash": str,
    "wall_seconds": (int, float),
}

FLEET_POLICIES = ["fifo", "deadline", "affinity"]


def check_fleet_document(doc, path):
    if doc.get("schema") != FLEET_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             f"expected {FLEET_SCHEMA!r}")
    hardware = doc.get("hardware_threads")
    if not isinstance(hardware, int) or isinstance(hardware, bool) \
            or hardware < 1:
        fail(f"{path}: hardware_threads must be an int >= 1")
    smoke = doc.get("smoke")
    if not isinstance(smoke, bool):
        fail(f"{path}: smoke must be a bool")

    workload = doc.get("workload")
    if not isinstance(workload, dict):
        fail(f"{path}: missing workload block")
    check_fields(workload, {"seed": int, "jobs": int, "pool_gpus": int,
                            "resize_events": int}, f"{path}: workload")

    policies = doc.get("policies")
    if not isinstance(policies, list) or not policies:
        fail(f"{path}: policies must be a non-empty array")
    by_policy = {}
    for record in policies:
        name = record.get("policy", "?")
        where = f"{path}: policy {name!r}"
        check_fields(record, FLEET_POLICY_FIELDS, where)
        if name in by_policy:
            fail(f"{path}: duplicate policy record {name!r}")
        by_policy[name] = record
        # The headline acceptance criterion: accounting must close exactly,
        # and no job may be left stranded (a stranded job means the
        # simulator deadlocked a placement).
        if record["jobs_in"] != record["completed"] + record["failed"] + \
                record["stranded"]:
            fail(f"{where}: jobs_in {record['jobs_in']} != completed "
                 f"{record['completed']} + failed {record['failed']} + "
                 f"stranded {record['stranded']}")
        if not record["accounting_exact"]:
            fail(f"{where}: accounting_exact is false")
        if record["stranded"] != 0:
            fail(f"{where}: {record['stranded']} jobs left stranded")
        if not 0.0 <= record["utilization"] <= 1.0:
            fail(f"{where}: utilization {record['utilization']!r} outside "
                 f"[0, 1]")
        waits = (record["wait_mean_s"], record["wait_p50_s"],
                 record["wait_p99_s"], record["wait_max_s"])
        if any(not math.isfinite(w) or w < 0 for w in waits):
            fail(f"{where}: wait statistics must be finite and >= 0")
        if not record["wait_p50_s"] <= record["wait_p99_s"] \
                <= record["wait_max_s"]:
            fail(f"{where}: wait percentiles must satisfy p50 <= p99 <= max")
        if record["cache_hits"] + record["cache_misses"] != record["plans"]:
            fail(f"{where}: cache_hits + cache_misses != plans")
        # Exact, not approximate: the bench computes hits/plans in IEEE
        # doubles and the JSON round-trips them, so == is the right test.
        expected_rate = (record["cache_hits"] / record["plans"]
                         if record["plans"] else 0.0)
        if record["cache_hit_rate"] != expected_rate:
            fail(f"{where}: cache_hit_rate {record['cache_hit_rate']!r} != "
                 f"hits/plans {expected_rate!r}")
        if len(record["event_log_hash"]) != 16 or \
                any(c not in "0123456789abcdef"
                    for c in record["event_log_hash"]):
            fail(f"{where}: event_log_hash must be 16 lowercase hex chars")
    for name in FLEET_POLICIES:
        if name not in by_policy:
            fail(f"{path}: missing policy record {name!r}")

    determinism = doc.get("determinism")
    if not isinstance(determinism, dict):
        fail(f"{path}: missing determinism block")
    check_fields(determinism, {"policy": str, "runs": int,
                               "identical_logs": bool,
                               "event_log_hash": str},
                 f"{path}: determinism")
    if determinism["runs"] < 2:
        fail(f"{path}: determinism needs at least 2 runs")
    if not determinism["identical_logs"]:
        fail(f"{path}: determinism reruns diverged")
    pinned = by_policy.get(determinism["policy"], {}).get("event_log_hash")
    if pinned != determinism["event_log_hash"]:
        fail(f"{path}: determinism hash does not match the "
             f"{determinism['policy']!r} policy record")

    engine = doc.get("engine")
    if not isinstance(engine, dict):
        fail(f"{path}: missing engine block")
    check_fields(engine, {"events": int, "wall_seconds": (int, float),
                          "events_per_second": (int, float),
                          "far_inserts": int, "refills": int,
                          "ordered": bool}, f"{path}: engine")
    if not engine["ordered"]:
        fail(f"{path}: engine churn popped events out of (time, seq) order")
    if engine["events"] < 1 or engine["events_per_second"] <= 0:
        fail(f"{path}: engine events and events_per_second must be positive")
    enforce_hardware_gated_floor(engine["events_per_second"],
                                 FLEET_MIN_ENGINE_EPS_8T, hardware, path,
                                 "engine throughput", smoke=smoke,
                                 unit=" events/s")

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        fail(f"{path}: missing summary block")
    check_fields(summary, {"fifo_hit_rate": (int, float),
                           "affinity_hit_rate": (int, float),
                           "events_per_second": (int, float)},
                 f"{path}: summary")
    if summary["fifo_hit_rate"] != by_policy["fifo"]["cache_hit_rate"] or \
            summary["affinity_hit_rate"] != \
            by_policy["affinity"]["cache_hit_rate"]:
        fail(f"{path}: summary hit-rates do not match the policy records")
    # Structural, not a perf floor, so never gated: steering placements
    # onto warm (network, width) pairs is the affinity policy's entire
    # reason to exist.
    if summary["affinity_hit_rate"] <= summary["fifo_hit_rate"]:
        fail(f"{path}: affinity hit-rate "
             f"{summary['affinity_hit_rate']:.3f} does not beat fifo "
             f"{summary['fifo_hit_rate']:.3f}")

    print(f"check_bench_schema: fleet OK ({len(policies)} policies, "
          f"affinity {summary['affinity_hit_rate']:.1%} vs fifo "
          f"{summary['fifo_hit_rate']:.1%}, engine "
          f"{engine['events_per_second']:.0f} events/s)")
    return by_policy


def check_fleet_reference(current, reference):
    """Event-log hashes are deterministic per host but depend on libm (the
    planner's periods feed the log), so the reference pins accounting shape,
    not bits: same policies, and identical jobs_in/completed/failed when the
    workloads match."""
    shared = sorted(set(current) & set(reference))
    if not shared:
        fail("reference comparison: no shared policy records")
    for name in shared:
        cur, ref = current[name], reference[name]
        if cur["jobs_in"] != ref["jobs_in"]:
            continue  # different workload size; nothing comparable
        for key in ("completed", "failed", "stranded"):
            if cur[key] != ref[key]:
                fail(f"policy {name!r}: {key} {cur[key]!r} != reference "
                     f"{ref[key]!r}")
    print(f"check_bench_schema: {len(shared)} fleet policy records match "
          "the reference accounting")


CHECKERS = {
    PLANNER_SCHEMA: (check_planner_document, check_planner_reference),
    SERVE_SCHEMA: (check_serve_document, check_serve_reference),
    NET_SCHEMA: (check_net_document, check_net_reference),
    SOLVER_SCHEMA: (check_solver_document, check_solver_reference),
    EXPLAIN_SCHEMA: (check_explain_document, check_explain_reference),
    FLEET_SCHEMA: (check_fleet_document, check_fleet_reference),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="bench output to validate")
    parser.add_argument("--reference",
                        help="committed baseline to compare results against")
    args = parser.parse_args()

    with open(args.bench_json) as handle:
        doc = json.load(handle)
    schema = doc.get("schema")
    if schema not in CHECKERS:
        fail(f"{args.bench_json}: unknown schema {schema!r} "
             f"(known: {sorted(CHECKERS)})")
    check_document, check_reference = CHECKERS[schema]
    current = check_document(doc, args.bench_json)
    print(f"check_bench_schema: {args.bench_json}: {schema} OK "
          f"({len(current)} records)")

    if args.reference:
        with open(args.reference) as handle:
            ref_doc = json.load(handle)
        if ref_doc.get("schema") != schema:
            fail(f"{args.reference}: reference schema "
                 f"{ref_doc.get('schema')!r} does not match {schema!r}")
        reference = check_document(ref_doc, args.reference)
        check_reference(current, reference)


if __name__ == "__main__":
    main()
