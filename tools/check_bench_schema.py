#!/usr/bin/env python3
"""Validate a bench_planner JSON document (schema madpipe-bench-planner-v1).

Checks the structural schema — required keys, types, sane values — and,
with --reference, that every workload present in both files achieved the
same period and allocation fingerprint as the committed reference (the
fast path must be a pure speedup, never a result change).

Stdlib only; exits non-zero with a message on the first violation.
"""

import argparse
import json
import math
import sys

SCHEMA = "madpipe-bench-planner-v1"

WORKLOAD_FIELDS = {
    "name": str,
    "repeats": int,
    "wall_seconds": (int, float),
    "per_solve_seconds": (int, float),
    "feasible": bool,
    "period": (int, float),
    "phase1_period": (int, float),
    "allocation": str,
    "dp_states": int,
}

STATS_FIELDS = {
    "dp_probes": int,
    "dp_states": int,
    "dp_state_visits": int,
    "memo_probes": int,
    "memo_child_lookups": int,
    "memo_hits": int,
    "memo_max_load_factor": (int, float),
    "transition_lookups": int,
    "transition_hits": int,
    "state_budget_hits": int,
    "phase1_probes": int,
    "phase2_probes": int,
    "speculative_probes": int,
    "speculative_hits": int,
    "phase1_wall_seconds": (int, float),
    "phase2_wall_seconds": (int, float),
}


def fail(message):
    print(f"check_bench_schema: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, fields, where):
    for key, expected in fields.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        value = obj[key]
        # bool is an int subclass in Python; don't let it satisfy int fields.
        if expected is int and isinstance(value, bool):
            fail(f"{where}: key '{key}' is a bool, expected int")
        if not isinstance(value, expected):
            fail(f"{where}: key '{key}' has type {type(value).__name__}")


def check_document(doc, path):
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("planner_stats_instrumented"), bool):
        fail(f"{path}: planner_stats_instrumented must be a bool")
    workloads = doc.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail(f"{path}: workloads must be a non-empty array")
    for record in workloads:
        where = f"{path}: workload {record.get('name', '?')!r}"
        check_fields(record, WORKLOAD_FIELDS, where)
        if record["repeats"] < 1:
            fail(f"{where}: repeats must be >= 1")
        if record["per_solve_seconds"] < 0 or record["wall_seconds"] < 0:
            fail(f"{where}: negative timing")
        if record["feasible"]:
            if not (record["period"] > 0 and math.isfinite(record["period"])):
                fail(f"{where}: feasible but period is {record['period']}")
            if not record["allocation"]:
                fail(f"{where}: feasible but allocation fingerprint is empty")
        if doc["planner_stats_instrumented"]:
            if "stats" not in record:
                fail(f"{where}: instrumented build but no stats block")
            check_fields(record["stats"], STATS_FIELDS, where + " stats")
    names = [record["name"] for record in workloads]
    if len(set(names)) != len(names):
        fail(f"{path}: duplicate workload names")
    return {record["name"]: record for record in workloads}


def check_reference(current, reference):
    shared = sorted(set(current) & set(reference))
    if not shared:
        fail("no workloads shared with the reference file")
    for name in shared:
        cur, ref = current[name], reference[name]
        if cur["feasible"] != ref["feasible"]:
            fail(f"{name}: feasibility {cur['feasible']} != reference "
                 f"{ref['feasible']}")
        if not cur["feasible"]:
            continue
        if cur["period"] != ref["period"]:
            fail(f"{name}: period {cur['period']!r} != reference "
                 f"{ref['period']!r} (results must be bit-identical)")
        if cur["allocation"] != ref["allocation"]:
            fail(f"{name}: allocation {cur['allocation']!r} != reference "
                 f"{ref['allocation']!r}")
    print(f"check_bench_schema: {len(shared)} workloads match the reference "
          "(periods and allocations identical)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="bench_planner output to validate")
    parser.add_argument("--reference",
                        help="committed baseline to compare results against")
    args = parser.parse_args()

    with open(args.bench_json) as handle:
        current = check_document(json.load(handle), args.bench_json)
    print(f"check_bench_schema: {args.bench_json}: schema OK "
          f"({len(current)} workloads)")

    if args.reference:
        with open(args.reference) as handle:
            reference = check_document(json.load(handle), args.reference)
        check_reference(current, reference)


if __name__ == "__main__":
    main()
