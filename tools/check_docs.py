#!/usr/bin/env python3
"""Keep the documentation from drifting away from the repo.

Three checks, stdlib only, no build required:

  1. Markdown links: every relative link/image target in the repo's
     markdown files must resolve to an existing file or directory
     (anchors are stripped; http(s)/mailto links are skipped). Catches
     renamed or deleted files that docs still point to.

  2. CLI subcommands: every `madpipe <subcommand>` invocation shown in the
     markdown files must be a subcommand the CLI actually dispatches.
     The authoritative list is parsed from the `usage: madpipe <...>`
     line in tools/madpipe_cli.cpp, so the check works pre-build; pass
     --madpipe PATH to verify against a built binary's --help output
     instead.

  3. With --validate: every committed examples/*.json and
     examples/*.profile document must stay parseable. With --madpipe the
     built binary's `madpipe validate` does the deep check; without it a
     stdlib structural pass runs (JSON / JSONL well-formedness, profile
     magic headers) so the docs job catches truncated or mis-edited
     example documents pre-build.

Exit status is non-zero with one line per violation. Run from anywhere:
paths are resolved relative to the repository root (this script's
parent's parent).
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Markdown files subject to both checks. Directories are scanned
# non-recursively so build trees and third-party checkouts stay out.
DOC_GLOBS = ["*.md", "docs/*.md"]

# [text](target) and ![alt](target); inline code spans are removed first.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
FENCE_RE = re.compile(r"^(```|~~~)")

# `madpipe <word>` where <word> looks like a subcommand (not an option or
# a placeholder like <profile>).
SUBCOMMAND_RE = re.compile(r"\bmadpipe\s+([a-z][a-z0-9_-]*)\b")

# Words that follow "madpipe" in prose without being subcommands.
PROSE_WHITELIST = {
    "serve",  # always a real subcommand, listed for clarity
}


def doc_files():
    files = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO.glob(pattern)))
    return files


def iter_prose_lines(text):
    """Markdown lines outside fenced code blocks, plus fenced shell lines
    (fenced blocks are where CLI invocations live; links live in prose)."""
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        yield line, in_fence


def check_links(path, text, errors):
    for line, in_fence in iter_prose_lines(text):
        if in_fence:
            continue
        stripped = CODE_SPAN_RE.sub("", line)
        for target in LINK_RE.findall(stripped):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure in-page anchor
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO)}: broken link "
                              f"-> {target}")


def subcommands_from_source():
    source = (REPO / "tools" / "madpipe_cli.cpp").read_text()
    match = re.search(r'"usage: madpipe "\s*"<([a-z|]+)>', source)
    if not match:
        sys.exit("check_docs: cannot find the usage line in madpipe_cli.cpp")
    return set(match.group(1).split("|"))


def subcommands_from_binary(binary):
    # usage() prints to stderr and exits 2; any run without args shows it.
    proc = subprocess.run([binary], capture_output=True, text=True)
    match = re.search(r"usage: madpipe <([a-z|]+)>", proc.stderr + proc.stdout)
    if not match:
        sys.exit(f"check_docs: {binary} printed no recognizable usage line")
    return set(match.group(1).split("|"))


def check_subcommands(path, text, known, errors):
    for line, in_fence in iter_prose_lines(text):
        for word in SUBCOMMAND_RE.findall(line):
            if word in known or word in PROSE_WHITELIST:
                continue
            # Skip flag-like and clearly-prose continuations ("madpipe is",
            # "madpipe serves", option mentions, paper name usage).
            if not in_fence:
                continue
            errors.append(f"{path.relative_to(REPO)}: `madpipe {word}` is "
                          f"not a CLI subcommand (known: {sorted(known)})")


def example_documents():
    return sorted(REPO.glob("examples/*.json")) + \
        sorted(REPO.glob("examples/*.profile"))


def validate_example_structurally(path, errors):
    """Pre-build fallback for `madpipe validate`: JSON / JSONL documents
    must parse, profile documents must open with a known magic/schema."""
    rel = path.relative_to(REPO)
    text = path.read_text()
    if path.suffix == ".profile":
        if not text.lstrip().startswith("madpipe-profile-v1"):
            errors.append(f"{rel}: missing madpipe-profile-v1 header")
        return
    try:
        json.loads(text)
        return
    except ValueError:
        pass
    # JSONL (the serve --stdin request format): every non-empty line is an
    # object.
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) < 2:
        errors.append(f"{rel}: not valid JSON")
        return
    for number, line in enumerate(lines, start=1):
        try:
            document = json.loads(line)
        except ValueError as error:
            errors.append(f"{rel}: line {number}: {error}")
            return
        if not isinstance(document, dict):
            errors.append(f"{rel}: line {number}: not a JSON object")
            return


def validate_examples(binary, errors):
    documents = example_documents()
    if not documents:
        errors.append("examples/: no example documents found")
        return 0
    if binary:
        proc = subprocess.run([binary, "validate"] +
                              [str(d) for d in documents],
                              capture_output=True, text=True)
        if proc.returncode != 0:
            for line in (proc.stdout + proc.stderr).splitlines():
                if "error" in line:
                    errors.append(line.strip())
            if proc.returncode != 1 or not errors:
                errors.append(f"madpipe validate exited {proc.returncode}")
    else:
        for path in documents:
            validate_example_structurally(path, errors)
    return len(documents)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--madpipe", metavar="PATH",
                        help="built madpipe binary to read subcommands from "
                             "(default: parse tools/madpipe_cli.cpp)")
    parser.add_argument("--validate", action="store_true",
                        help="also validate committed examples/ documents "
                             "(deeply via `madpipe validate` when --madpipe "
                             "is given, structurally otherwise)")
    args = parser.parse_args()

    known = (subcommands_from_binary(args.madpipe) if args.madpipe
             else subcommands_from_source())

    errors = []
    files = doc_files()
    for path in files:
        text = path.read_text()
        check_links(path, text, errors)
        check_subcommands(path, text, known, errors)

    validated = validate_examples(args.madpipe, errors) if args.validate \
        else None

    for error in errors:
        print(f"check_docs: FAIL: {error}", file=sys.stderr)
    if errors:
        sys.exit(1)
    suffix = f", {validated} example documents" if validated else ""
    print(f"check_docs: OK ({len(files)} files, "
          f"subcommands: {', '.join(sorted(known))}{suffix})")


if __name__ == "__main__":
    main()
