// madpipe — command-line front end to the library.
//
//   madpipe profile <network> [-o FILE] [--image N] [--batch N] [--length N]
//                   [--format text|json]
//       Generate a synthetic profile for resnet50 / resnet101 /
//       inception_v3 / densenet121, or an LLM-scale transformer preset
//       (gpt2-xl / gpt3-13b-shape / llm-2k), and write it to FILE (default
//       stdout). --format json writes the v2 JSON profile format instead of
//       v1 text (docs/PROFILE_FORMAT.md). --length defaults to the paper's
//       24 coarsened stages for the image networks and to the full
//       linearized stack for transformer presets.
//
//   madpipe validate <FILE...>
//       Check input files without running anything: v1 text and v2 JSON
//       profiles are deeply parsed, serve request documents (single object,
//       batch, or one-object-per-line JSONL) are parsed per request, fleet
//       traces are structurally validated. Prints one line per file; exits
//       nonzero if any file fails.
//
//   madpipe plan <profile-file> [--planner NAME] [--gpus N] [--memory-gb X]
//                [--bandwidth-gbs X] [--json FILE] [--trace FILE]
//       Plan the profile on the platform. Planners: madpipe (default),
//       madpipe-contig, pipedream, gpipe, recompute. --json dumps the full
//       plan; --trace writes a chrome://tracing document of the steady
//       state.
//
//   madpipe simulate <profile-file> [--batches N] [plan options]
//       Plan, then execute the plan in the discrete-event simulator and
//       report measured throughput and memory peaks.
//
//   madpipe hybrid <profile-file> [--gpus N] [--memory-gb X]
//                [--bandwidth-gbs X]
//       Hybrid data+model-parallel planning (stage replication).
//
//   madpipe solver <profile-file> [--slack X] [plan options]
//       Run phase 1, then one ILP-scheduler probe at slack × the phase-1
//       period, and print the branch-and-bound solver counters (nodes,
//       pivots, warm starts, wall time).
//
//   madpipe planner <profile-file> [--speculation W] [--threads N]
//                   [plan options]
//       Run the full MadPipe planner and print the hot-path counters: DP
//       states and memo/transition-cache behaviour, bisection probes
//       (speculative ones included), and per-phase wall time. --threads > 1
//       runs the DP probes on the parallel wavefront engine (bit-identical
//       plans at every shard count; DESIGN.md §11).
//
//   madpipe explain <profile-file> [--periods N] [--batches N]
//                   [--json FILE] [--timeline-out FILE] [plan options]
//       Plan the profile, then explain the resulting schedule: per-stage
//       u_F/u_B/W/ā tables, per-resource busy/bubble fractions with the
//       critical resource, the exact per-GPU memory watermark decomposed
//       into the §3 terms (weights / activations / comm buffers) with
//       headroom vs M, and the simulator cross-check. --json writes the
//       madpipe-explain-v1 document; --timeline-out writes an unrolled
//       Chrome trace with one process per GPU and per link (--periods
//       repetitions, default 6).
//
//   madpipe serve [--requests FILE] [-o FILE] [--workers N] [--queue N]
//                 [--shards N] [--cache-mb X] [--ttl-s X] [--deadline-ms X]
//                 [--repeat N] [--stats] [--stdin]
//       Serve planning requests through the cached, deadline-aware
//       PlanService. Batch mode reads one JSON request document (see
//       src/serve/protocol.hpp) from --requests (or stdin when the path is
//       "-") and writes the batch response document; --repeat resubmits the
//       batch N times so cache hits are observable in the stats block.
//       --stdin switches to a line loop: each input line is one request
//       document, each output line the matching response.
//
//   madpipe serve --listen HOST:PORT [--net-workers N] [--rate R]
//                 [--burst N] [--shed-depth N] [--edge-triggered]
//       TCP mode: newline-delimited madpipe-serve-v1 requests over an epoll
//       event loop (one response line per request line, in order per
//       connection). Admission control sheds with `rejected` responses: a
//       per-connection token bucket (--rate tokens/s, --burst) and a
//       service-backlog depth limit (--shed-depth, default the queue
//       capacity). PORT 0 binds an ephemeral port (printed on stderr).
//       SIGINT/SIGTERM shut down gracefully: in-flight requests finish,
//       buffers flush, then the process exits.
//
//   madpipe serve ... [--admin HOST:PORT] [--slow-k N]
//       Live-telemetry admin endpoint (any serve mode): a read-only
//       HTTP/1.0 listener answering /metrics (Prometheus text of the live
//       registry), /healthz (ok, or 503 "draining" during shutdown),
//       /slow (madpipe-admin-v1 JSON: tail-sampled slow-request span
//       trees with trace ids and admission/queue/plan breakdown), and
//       /tracez (span rings as a Chrome trace). --admin also arms
//       tail-based sampling: the slowest --slow-k requests per 10 s
//       window plus every errored request keep their complete span trees
//       in bounded memory. PORT 0 binds an ephemeral port (printed on
//       stderr).
//
//   madpipe serve ... [--cache-save FILE] [--cache-load FILE]
//       Plan-cache persistence (any serve mode): --cache-load warms the
//       cache from a madpipe-cachesnap-v1 snapshot before serving;
//       --cache-save writes one on exit, so restarts serve their first
//       requests as verified cache hits instead of re-planning.
//
//   madpipe stats [FILE] [--buckets]
//       Render a --metrics-out JSON dump (madpipe-metrics-v1) as
//       Prometheus-style text, histograms as interpolated p50/p95/p99
//       estimates (pass --buckets for the raw cumulative buckets as well).
//       Without FILE, dump this process's own registry (mostly useful from
//       tests; a fresh CLI process has only empty metrics).
//
//   madpipe solver|planner|explain|serve [--trace-out FILE]
//                                        [--metrics-out FILE]
//       Observability sinks, available on the planning-pipeline
//       commands: --trace-out records obs::Span events and writes a Chrome
//       trace-event document on exit (open in chrome://tracing or
//       https://ui.perfetto.dev); --metrics-out writes the cumulative
//       metrics registry as JSON (render with `madpipe stats FILE`).
//
//   madpipe --version
//       Print the version and exit.
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cyclic/ilp_scheduler.hpp"
#include "cyclic/stage_graph.hpp"
#include "hybrid/hybrid.hpp"
#include "madpipe/planner.hpp"
#include "madpipe/search.hpp"
#include "models/profile_io.hpp"
#include "models/transformer.hpp"
#include "models/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/tail_sampler.hpp"
#include "obs/trace.hpp"
#include "pipedream/pipedream.hpp"
#include "report/plan_report.hpp"
#include "report/timeline_export.hpp"
#include "schedule/gpipe.hpp"
#include "schedule/recompute.hpp"
#include "fleet/simulator.hpp"
#include "fleet/trace.hpp"
#include "serve/net/admin.hpp"
#include "serve/net/server.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_stats.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "sim/event_sim.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

using namespace madpipe;

namespace {

constexpr const char kVersion[] = "0.3.0";

struct Args {
  std::vector<std::string> positional;
  std::string planner = "madpipe";
  int gpus = 4;
  double memory_gb = 8.0;
  double bandwidth_gbs = 12.0;
  int batches = 64;
  int image = 1000;
  int batch = 8;
  int length = -1;  ///< -1 = unset: 24 for image networks, full for LLM presets
  std::string format = "text";  ///< profile output: v1 "text" or v2 "json"
  double slack = 1.05;
  int speculation = 0;
  int threads = 1;  ///< DP wavefront shards (>1 engages the parallel engine)
  int periods = 6;  ///< steady periods the explain timeline unrolls
  std::string output;
  std::string json_path;
  std::string trace_path;
  std::string timeline_out;  ///< explain: unrolled schedule Chrome trace
  std::string trace_out;    ///< obs span trace (Chrome trace-event JSON)
  std::string metrics_out;  ///< obs registry dump (madpipe-metrics-v1 JSON)
  bool buckets = false;     ///< stats: raw histogram buckets too
  // serve
  std::string requests_path;
  int workers = 2;
  int queue = 64;
  int shards = 8;
  double cache_mb = 64.0;
  double ttl_s = 0.0;
  double deadline_ms = 0.0;
  int repeat = 1;
  bool serve_stats = false;
  bool stdin_loop = false;
  // serve --listen (TCP front-end) + cache persistence
  std::string listen;        ///< HOST:PORT; empty = no TCP front-end
  std::string cache_save;    ///< snapshot written on exit
  std::string cache_load;    ///< snapshot loaded (warm-up) at start
  int net_workers = 0;       ///< dispatch threads; 0 = hardware
  double rate = 0.0;         ///< per-connection tokens/s; 0 = unlimited
  double burst = 64.0;       ///< per-connection token bucket burst
  int shed_depth = 0;        ///< queue depth that sheds; 0 = queue capacity
  bool edge_triggered = false;  ///< epoll ET instead of LT
  std::string admin;         ///< HOST:PORT; empty = no admin endpoint
  int slow_k = 8;            ///< tail sampler: slowest-k kept per window
  // fleet
  std::string policy = "fifo";
  unsigned long long seed = 42;  ///< synthetic-trace seed
  int fleet_jobs = 24;           ///< synthetic-trace job count
  int pool = 8;                  ///< synthetic-trace initial pool capacity
  std::string log_out;           ///< fleet event-log text file
};

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: madpipe "
               "<profile|validate|plan|simulate|hybrid|solver|planner|explain|serve|fleet|stats> "
               "...\n"
               "  profile <network> [-o FILE] [--image N] [--batch N] "
               "[--length N] [--format text|json]\n"
               "  validate <FILE...>   check profiles (v1 text or v2 JSON) "
               "and serve request files\n"
               "  plan <profile> [--planner NAME] [--gpus N] [--memory-gb X]\n"
               "       [--bandwidth-gbs X] [--json FILE] [--trace FILE]\n"
               "  simulate <profile> [--batches N] [plan options]\n"
               "  hybrid <profile> [--gpus N] [--memory-gb X] "
               "[--bandwidth-gbs X]\n"
               "  solver <profile> [--slack X] [plan options]\n"
               "  planner <profile> [--speculation W] [--threads N] "
               "[plan options]\n"
               "  explain <profile> [--periods N] [--batches N] [--json FILE]"
               "\n"
               "          [--timeline-out FILE] [plan options]\n"
               "  serve [--requests FILE] [-o FILE] [--workers N] [--queue N]"
               "\n"
               "        [--shards N] [--cache-mb X] [--ttl-s X] "
               "[--deadline-ms X]\n"
               "        [--repeat N] [--stats] [--stdin]\n"
               "        [--listen HOST:PORT] [--net-workers N] [--rate R] "
               "[--burst N]\n"
               "        [--shed-depth N] [--edge-triggered]\n"
               "        [--cache-save FILE] [--cache-load FILE]\n"
               "        [--admin HOST:PORT] [--slow-k N]\n"
               "  fleet [TRACE.json] [--policy fifo|deadline|affinity] "
               "[--seed S]\n"
               "        [--jobs N] [--pool N] [--memory-gb X] "
               "[--bandwidth-gbs X]\n"
               "        [--json FILE] [--log-out FILE]   (no TRACE: "
               "seeded synthetic trace)\n"
               "  stats [FILE] [--buckets]   render a --metrics-out dump as "
               "Prometheus text\n"
               "                             (histograms as p50/p95/p99; "
               "--buckets for raw)\n"
               "  solver|planner|explain|serve|fleet also accept "
               "[--trace-out FILE] [--metrics-out FILE]\n"
               "  --version\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    // Accept both `--opt value` and `--opt=value` (shared splitting rule,
    // util/cli.hpp — the bench harness uses the same one).
    const cli::OptionArg option = cli::split_option(argv[i]);
    const std::string& arg = option.name;
    const auto next_value = [&]() -> std::string {
      std::optional<std::string> value = cli::take_value(option, argc, argv, &i);
      if (!value.has_value()) usage(("missing value for " + arg).c_str());
      return *value;
    };
    if (arg == "--planner") {
      args.planner = next_value();
    } else if (arg == "--gpus") {
      args.gpus = std::atoi(next_value().c_str());
    } else if (arg == "--memory-gb") {
      args.memory_gb = std::atof(next_value().c_str());
    } else if (arg == "--bandwidth-gbs") {
      args.bandwidth_gbs = std::atof(next_value().c_str());
    } else if (arg == "--batches") {
      args.batches = std::atoi(next_value().c_str());
    } else if (arg == "--image") {
      args.image = std::atoi(next_value().c_str());
    } else if (arg == "--batch") {
      args.batch = std::atoi(next_value().c_str());
    } else if (arg == "--length") {
      args.length = std::atoi(next_value().c_str());
    } else if (arg == "--format") {
      args.format = next_value();
    } else if (arg == "--slack") {
      args.slack = std::atof(next_value().c_str());
    } else if (arg == "--periods") {
      args.periods = std::atoi(next_value().c_str());
    } else if (arg == "--speculation") {
      args.speculation = std::atoi(next_value().c_str());
    } else if (arg == "--threads") {
      args.threads = std::atoi(next_value().c_str());
    } else if (arg == "--requests") {
      args.requests_path = next_value();
    } else if (arg == "--workers") {
      args.workers = std::atoi(next_value().c_str());
    } else if (arg == "--queue") {
      args.queue = std::atoi(next_value().c_str());
    } else if (arg == "--shards") {
      args.shards = std::atoi(next_value().c_str());
    } else if (arg == "--cache-mb") {
      args.cache_mb = std::atof(next_value().c_str());
    } else if (arg == "--ttl-s") {
      args.ttl_s = std::atof(next_value().c_str());
    } else if (arg == "--deadline-ms") {
      args.deadline_ms = std::atof(next_value().c_str());
    } else if (arg == "--repeat") {
      args.repeat = std::atoi(next_value().c_str());
    } else if (arg == "--stats") {
      args.serve_stats = true;
    } else if (arg == "--stdin") {
      args.stdin_loop = true;
    } else if (arg == "--listen") {
      args.listen = next_value();
    } else if (arg == "--cache-save") {
      args.cache_save = next_value();
    } else if (arg == "--cache-load") {
      args.cache_load = next_value();
    } else if (arg == "--net-workers") {
      args.net_workers = std::atoi(next_value().c_str());
    } else if (arg == "--rate") {
      args.rate = std::atof(next_value().c_str());
    } else if (arg == "--burst") {
      args.burst = std::atof(next_value().c_str());
    } else if (arg == "--shed-depth") {
      args.shed_depth = std::atoi(next_value().c_str());
    } else if (arg == "--edge-triggered") {
      args.edge_triggered = true;
    } else if (arg == "--admin") {
      args.admin = next_value();
    } else if (arg == "--slow-k") {
      args.slow_k = std::atoi(next_value().c_str());
    } else if (arg == "--policy") {
      args.policy = next_value();
    } else if (arg == "--seed") {
      args.seed = std::strtoull(next_value().c_str(), nullptr, 10);
    } else if (arg == "--jobs") {
      args.fleet_jobs = std::atoi(next_value().c_str());
    } else if (arg == "--pool") {
      args.pool = std::atoi(next_value().c_str());
    } else if (arg == "--log-out") {
      args.log_out = next_value();
    } else if (arg == "--buckets") {
      args.buckets = true;
    } else if (arg == "-o" || arg == "--output") {
      args.output = next_value();
    } else if (arg == "--json") {
      args.json_path = next_value();
    } else if (arg == "--trace") {
      args.trace_path = next_value();
    } else if (arg == "--timeline-out") {
      args.timeline_out = next_value();
    } else if (arg == "--trace-out") {
      args.trace_out = next_value();
    } else if (arg == "--metrics-out") {
      args.metrics_out = next_value();
    } else if (!arg.empty() && arg[0] == '-') {
      usage(("unknown option " + arg).c_str());
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << content;
}

/// Observability sinks for the solver/planner/serve commands: arms span
/// tracing when --trace-out was given, and on destruction writes the Chrome
/// trace and/or the metrics-registry JSON dump.
class ObsSinks {
 public:
  explicit ObsSinks(const Args& args)
      : trace_path_(args.trace_out), metrics_path_(args.metrics_out) {
    if (!trace_path_.empty()) obs::install_trace();
  }
  ~ObsSinks() {
    if (!trace_path_.empty()) {
      obs::uninstall_trace();
      write_file(trace_path_, obs::trace_to_chrome_json());
      std::fprintf(stderr,
                   "trace -> %s (open in chrome://tracing or Perfetto)\n",
                   trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      write_file(metrics_path_, obs::Registry::global().json());
      std::fprintf(stderr, "metrics -> %s (render: madpipe stats %s)\n",
                   metrics_path_.c_str(), metrics_path_.c_str());
    }
  }

  ObsSinks(const ObsSinks&) = delete;
  ObsSinks& operator=(const ObsSinks&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

int cmd_profile(const Args& args) {
  if (args.positional.empty()) usage("profile needs a network name");
  models::NetworkConfig config;
  config.network = args.positional[0];
  config.image_size = args.image;
  config.batch = args.batch;
  // Default chain length: the paper's 24 coarsened stages for the image
  // networks, but the full linearized stack for transformer presets —
  // coarsening an LLM profile only makes sense when asked for explicitly.
  config.chain_length = args.length >= 0
                            ? args.length
                            : (models::is_transformer_preset(config.network)
                                   ? 0
                                   : 24);
  const Chain chain = models::build_network(config);
  if (args.format != "text" && args.format != "json") {
    usage("--format must be text or json");
  }
  const std::string text = args.format == "json"
                               ? models::profile_to_json_string(chain)
                               : models::profile_to_string(chain);
  if (args.output.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    write_file(args.output, text);
    std::printf("wrote %s (%d layers)\n", args.output.c_str(), chain.length());
  }
  return 0;
}

/// One `madpipe validate` file outcome.
struct ValidateReport {
  bool ok = true;
  std::string kind;   ///< what the file validated as ("" when !ok)
  std::string error;  ///< first failure, empty when ok
};

char first_significant_byte(const std::string& text) {
  for (const char c : text) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return c;
  }
  return '\0';
}

ValidateReport validate_profile(const std::string& text) {
  ValidateReport report;
  const models::ProfileParseResult parsed =
      models::try_profile_from_string(text);
  if (!parsed.ok()) {
    report.ok = false;
    report.error = parsed.error;
    return report;
  }
  report.kind = (first_significant_byte(text) == '{' ? "madpipe-profile-v2, "
                                                     : "madpipe-profile-v1, ") +
                std::to_string(parsed.chain->length()) + " layers";
  return report;
}

ValidateReport validate_serve_document(const std::string& text) {
  ValidateReport report;
  const serve::BatchParse batch = serve::parse_requests(text);
  if (!batch.ok()) {
    report.ok = false;
    report.error = batch.error;
    return report;
  }
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const serve::RequestParse& request = batch.requests[i];
    if (request.ok()) continue;
    report.ok = false;
    report.error = "request " + std::to_string(i + 1) +
                   (request.id.empty() ? "" : " (id " + request.id + ")") +
                   ": " + request.error;
    return report;
  }
  report.kind = "serve requests, " + std::to_string(batch.requests.size());
  return report;
}

/// Validate one document: schema-tagged JSON dispatches to the matching
/// deep parser (profile v2, fleet trace); schema-less objects/arrays are
/// serve request documents; JSONL (one object per line, the serve --stdin
/// framing) validates line by line; anything non-JSON is a v1 text profile.
ValidateReport validate_document(const std::string& text) {
  const char first = first_significant_byte(text);
  if (first != '{' && first != '[') return validate_profile(text);

  const json::ParseResult parsed = json::parse(text);
  if (!parsed.ok()) {
    // Not one JSON document — maybe JSONL: every non-blank line an object.
    std::vector<std::string> lines;
    std::size_t start = 0;
    bool jsonl = true;
    while (start <= text.size()) {
      const std::size_t end = text.find('\n', start);
      const std::string line =
          text.substr(start, end == std::string::npos ? end : end - start);
      if (first_significant_byte(line) != '\0') {
        if (first_significant_byte(line) != '{') jsonl = false;
        lines.push_back(line);
      }
      if (end == std::string::npos) break;
      start = end + 1;
    }
    if (!jsonl || lines.size() < 2) {
      ValidateReport report;
      report.ok = false;
      report.error = "invalid JSON: " + parsed.error;
      return report;
    }
    for (std::size_t i = 0; i < lines.size(); ++i) {
      ValidateReport line_report = validate_document(lines[i]);
      if (line_report.ok) continue;
      line_report.error =
          "line " + std::to_string(i + 1) + ": " + line_report.error;
      return line_report;
    }
    ValidateReport report;
    report.kind = "serve request lines, " + std::to_string(lines.size());
    return report;
  }

  const json::Value& root = parsed.value;
  if (root.is_object()) {
    if (const json::Value* schema = root.find("schema");
        schema != nullptr && schema->is_string()) {
      const std::string& name = schema->as_string();
      if (name == "madpipe-profile-v2") return validate_profile(text);
      if (name == "madpipe-fleet-trace-v1") {
        ValidateReport report;
        const fleet::FleetTraceParse trace = fleet::fleet_trace_from_json(text);
        if (!trace.error.empty()) {
          report.ok = false;
          report.error = trace.error;
          return report;
        }
        report.kind = "madpipe-fleet-trace-v1";
        return report;
      }
      // Other schema-tagged documents (explain dumps, timelines, bench
      // records) are outputs, not inputs — well-formed JSON is all we ask.
      ValidateReport report;
      report.kind = name + " (well-formed JSON, not deeply checked)";
      return report;
    }
    if (root.find("traceEvents") != nullptr) {
      // Chrome trace-event export (timeline/--trace-out output).
      ValidateReport report;
      report.kind = "chrome trace (well-formed JSON, not deeply checked)";
      return report;
    }
  }
  return validate_serve_document(text);
}

int cmd_validate(const Args& args) {
  if (args.positional.empty()) usage("validate needs at least one file");
  int failures = 0;
  for (const std::string& path : args.positional) {
    std::ifstream in(path);
    if (!in.good()) {
      std::printf("%s: error: cannot read file\n", path.c_str());
      ++failures;
      continue;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const ValidateReport report = validate_document(text);
    if (report.ok) {
      std::printf("%s: ok (%s)\n", path.c_str(), report.kind.c_str());
    } else {
      std::printf("%s: error: %s\n", path.c_str(), report.error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

std::optional<Plan> run_planner(const Args& args, const Chain& chain,
                                const Platform& platform, Chain& plan_chain) {
  plan_chain = chain;
  if (args.planner == "madpipe" || args.planner == "madpipe-contig") {
    MadPipeOptions options;
    options.phase1.dp.grid = Discretization::paper();
    options.phase1.dp.threads = args.threads;
    options.disable_special_processor = args.planner == "madpipe-contig";
    return plan_madpipe(chain, platform, options);
  }
  if (args.planner == "pipedream") return plan_pipedream(chain, platform);
  if (args.planner == "recompute") {
    auto result = plan_recompute_pipeline(chain, platform);
    if (!result) return std::nullopt;
    plan_chain = result->merged_chain;  // the plan refers to the merged chain
    return std::move(result->plan);
  }
  if (args.planner == "gpipe") {
    const auto gpipe = plan_gpipe(chain, platform);
    if (!gpipe) {
      std::printf("infeasible\n");
      std::exit(1);
    }
    std::printf("gpipe plan (analytic fill/drain, m = %d micro-batches): "
                "period %s, speedup %sx\n",
                gpipe->micro_batches, fmt::seconds(gpipe->period).c_str(),
                fmt::fixed(gpipe->speedup(chain), 2).c_str());
    const Partitioning& parts = gpipe->allocation.partitioning();
    for (int s = 0; s < parts.num_stages(); ++s) {
      std::printf("  stage %d: layers [%d, %d]\n", s, parts.stage(s).first,
                  parts.stage(s).last);
    }
    std::exit(0);
  }
  usage(("unknown planner " + args.planner).c_str());
}

int cmd_plan(const Args& args, bool simulate) {
  if (args.positional.empty()) usage("plan needs a profile file");
  const Chain chain = models::load_profile(args.positional[0]);
  const Platform platform{args.gpus, args.memory_gb * GB,
                          args.bandwidth_gbs * GB};
  platform.validate();

  Chain plan_chain = chain;
  const std::optional<Plan> plan = run_planner(args, chain, platform,
                                               plan_chain);
  if (!plan) {
    std::printf("infeasible: no allocation fits %d GPUs with %s each\n",
                args.gpus, fmt::bytes(platform.memory_per_processor).c_str());
    return 1;
  }
  std::printf("%s", plan_to_string(*plan, plan_chain, platform).c_str());
  const auto check =
      validate_pattern(plan->pattern, plan->allocation, plan_chain, platform);
  std::printf("verifier: %s\n", check.valid ? "valid" : "INVALID");

  if (!args.json_path.empty()) {
    write_file(args.json_path, plan_to_json(*plan, plan_chain, platform));
    std::printf("plan JSON -> %s\n", args.json_path.c_str());
  }
  if (!args.trace_path.empty()) {
    write_file(args.trace_path,
               pattern_to_chrome_trace(plan->pattern, plan->allocation,
                                       plan_chain, 6));
    std::printf("chrome trace -> %s (open in chrome://tracing)\n",
                args.trace_path.c_str());
  }
  if (simulate) {
    const auto sim = simulate_pattern(plan->pattern, plan->allocation,
                                      plan_chain, platform,
                                      {args.batches});
    std::printf("simulated %d batches: steady period %s, makespan %s\n",
                args.batches, fmt::seconds(sim.steady_period).c_str(),
                fmt::seconds(sim.makespan).c_str());
    for (std::size_t p = 0; p < sim.processor_memory_peak.size(); ++p) {
      std::printf("  gpu%zu peak %s\n", p,
                  fmt::bytes(sim.processor_memory_peak[p]).c_str());
    }
  }
  return 0;
}

int cmd_solver(const Args& args) {
  if (args.positional.empty()) usage("solver needs a profile file");
  const ObsSinks sinks(args);
  const Chain chain = models::load_profile(args.positional[0]);
  const Platform platform{args.gpus, args.memory_gb * GB,
                          args.bandwidth_gbs * GB};
  platform.validate();

  Phase1Options options;
  options.dp.grid = Discretization::paper();
  const Phase1Result phase1 = madpipe_phase1(chain, platform, options);
  if (!phase1.feasible()) {
    std::printf("phase 1 infeasible: nothing to probe\n");
    return 1;
  }
  const CyclicProblem problem =
      build_cyclic_problem(*phase1.allocation, chain, platform);
  const Seconds period = phase1.period * args.slack;
  const ILPScheduleResult probe =
      ilp_schedule(problem, *phase1.allocation, chain, platform, period);
  std::printf("ILP probe at %s (%.2fx phase-1 period): %s\n",
              fmt::seconds(period).c_str(), args.slack,
              probe.feasible ? "feasible" : "infeasible");
  const solver::SolverStats& stats = probe.stats;
  std::printf("  nodes explored     %lld (%.0f nodes/s)\n",
              stats.nodes_explored,
              stats.wall_seconds > 0.0
                  ? static_cast<double>(stats.nodes_explored) /
                        stats.wall_seconds
                  : 0.0);
  std::printf("  lp solves          %lld\n", stats.lp_solves);
  std::printf("  simplex pivots     %lld (phase1 %lld, phase2 %lld, dual %lld,"
              " bland %lld)\n",
              stats.pivots, stats.phase1_iterations, stats.phase2_iterations,
              stats.dual_iterations, stats.bland_pivots);
  std::printf("  warm starts        %lld hit / %lld miss\n",
              stats.warm_start_hits, stats.warm_start_misses);
  std::printf("  heuristic seeds    %lld\n", stats.heuristic_incumbents);
  std::printf("  solver wall        %s\n",
              fmt::seconds(stats.wall_seconds).c_str());
  return 0;
}

int cmd_planner(const Args& args) {
  if (args.positional.empty()) usage("planner needs a profile file");
  const ObsSinks sinks(args);
  const Chain chain = models::load_profile(args.positional[0]);
  const Platform platform{args.gpus, args.memory_gb * GB,
                          args.bandwidth_gbs * GB};
  platform.validate();

  MadPipeOptions options;
  options.phase1.dp.grid = Discretization::paper();
  options.phase1.dp.threads = args.threads;
  options.phase1.speculation = args.speculation;
  options.phase2.speculation = args.speculation;
  const std::optional<Plan> plan = plan_madpipe(chain, platform, options);
  if (!plan) {
    std::printf("infeasible: no allocation fits %d GPUs with %s each\n",
                args.gpus, fmt::bytes(platform.memory_per_processor).c_str());
    return 1;
  }
  std::printf("%s", plan_to_string(*plan, chain, platform).c_str());

  const PlannerStats& stats = plan->stats;
  std::printf("planner counters:\n");
  std::printf("  dp probes          %lld (%lld consumed by phase 1)\n",
              stats.dp_probes, stats.phase1_probes);
  std::printf("  dp states          %lld (%lld visits, %.0f states/s)\n",
              stats.dp_states, stats.dp_state_visits,
              stats.phase1_wall_seconds > 0.0
                  ? static_cast<double>(stats.dp_states) /
                        stats.phase1_wall_seconds
                  : 0.0);
  std::printf("  memo probes        %lld per-state, %lld child lookups "
              "(%lld hits)\n",
              stats.memo_probes, stats.memo_child_lookups, stats.memo_hits);
  std::printf("  memo load factor   %.3f max (%lld rehashes, %lld avoided)\n",
              stats.memo_max_load_factor, stats.memo_rehashes,
              stats.memo_rehashes_avoided);
  std::printf("  dp threads         %d\n", std::max(args.threads, 1));
  std::printf("  transition cache   %lld lookups, %lld hits (%.1f%%)\n",
              stats.transition_lookups, stats.transition_hits,
              stats.transition_lookups > 0
                  ? 100.0 * static_cast<double>(stats.transition_hits) /
                        static_cast<double>(stats.transition_lookups)
                  : 0.0);
  std::printf("  phase 2 probes     %lld\n", stats.phase2_probes);
  std::printf("  speculation        %lld extra probes, %lld hits\n",
              stats.speculative_probes, stats.speculative_hits);
  std::printf("  state budget hits  %lld\n", stats.state_budget_hits);
  std::printf("  phase 1 wall       %s\n",
              fmt::seconds(stats.phase1_wall_seconds).c_str());
  std::printf("  phase 2 wall       %s\n",
              fmt::seconds(stats.phase2_wall_seconds).c_str());
  return 0;
}

int cmd_explain(const Args& args) {
  if (args.positional.empty()) usage("explain needs a profile file");
  if (args.periods < 1) usage("--periods must be >= 1");
  const ObsSinks sinks(args);
  const Chain chain = models::load_profile(args.positional[0]);
  const Platform platform{args.gpus, args.memory_gb * GB,
                          args.bandwidth_gbs * GB};
  platform.validate();

  Chain plan_chain = chain;
  const std::optional<Plan> plan =
      run_planner(args, chain, platform, plan_chain);
  if (!plan) {
    std::printf("infeasible: no allocation fits %d GPUs with %s each\n",
                args.gpus, fmt::bytes(platform.memory_per_processor).c_str());
    return 1;
  }

  report::PlanReportOptions options;
  options.simulation_batches = args.batches;
  const report::PlanReport rep =
      report::build_plan_report(*plan, plan_chain, platform, options);
  const report::ExplainSummary summary = report::summarize(rep);
  serve::serve_metrics().schedule_utilization.set(
      summary.mean_gpu_utilization);
  serve::serve_metrics().memory_headroom_bytes.set(
      summary.memory_headroom_bytes);
  std::printf("%s", report::plan_report_to_string(rep).c_str());

  if (!args.json_path.empty()) {
    write_file(args.json_path, report::plan_report_to_json(rep));
    std::printf("explain JSON -> %s\n", args.json_path.c_str());
  }
  if (!args.timeline_out.empty()) {
    write_file(args.timeline_out,
               report::timeline_to_chrome_json(plan->pattern, plan->allocation,
                                               plan_chain, {args.periods}));
    std::printf("timeline -> %s (%d periods; open in chrome://tracing)\n",
                args.timeline_out.c_str(), args.periods);
  }
  return 0;
}

int cmd_hybrid(const Args& args) {
  if (args.positional.empty()) usage("hybrid needs a profile file");
  const Chain chain = models::load_profile(args.positional[0]);
  const Platform platform{args.gpus, args.memory_gb * GB,
                          args.bandwidth_gbs * GB};
  const auto plan = hybrid::plan_hybrid(chain, platform);
  if (!plan) {
    std::printf("infeasible\n");
    return 1;
  }
  std::printf("%s", hybrid::hybrid_plan_to_string(*plan, chain).c_str());
  return 0;
}

serve::ServiceOptions serve_options(const Args& args) {
  serve::ServiceOptions options;
  if (args.workers < 0) usage("--workers must be >= 0");
  if (args.queue < 1) usage("--queue must be >= 1");
  if (args.shards < 1) usage("--shards must be >= 1");
  options.workers = static_cast<std::size_t>(args.workers);
  options.queue_capacity = static_cast<std::size_t>(args.queue);
  options.cache.shards = static_cast<std::size_t>(args.shards);
  options.cache.byte_budget = static_cast<std::size_t>(args.cache_mb * MB);
  options.cache.ttl_seconds = args.ttl_s;
  options.default_deadline_seconds = args.deadline_ms * 1e-3;
  return options;
}

/// Parse one request document, run it through the service, return the
/// responses in request order (parse failures become error responses).
std::vector<serve::PlanResponse> serve_document(serve::PlanService& service,
                                                const std::string& text,
                                                std::string* document_error) {
  std::vector<serve::PlanResponse> responses;
  serve::BatchParse batch = serve::parse_requests(text);
  if (!batch.ok()) {
    *document_error = batch.error;
    return responses;
  }
  std::vector<std::optional<std::future<serve::PlanResponse>>> futures;
  futures.reserve(batch.requests.size());
  for (serve::RequestParse& request : batch.requests) {
    if (request.ok()) {
      futures.push_back(service.submit(std::move(*request.request)));
    } else {
      futures.push_back(std::nullopt);
    }
  }
  responses.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    responses.push_back(futures[i].has_value()
                            ? futures[i]->get()
                            : serve::error_response(batch.requests[i].id,
                                                    batch.requests[i].error));
  }
  return responses;
}

/// SIGINT/SIGTERM → graceful-shutdown flag for `serve --listen`.
std::atomic<bool> g_serve_interrupted{false};

void serve_signal_handler(int) { g_serve_interrupted.store(true); }

/// Load a --cache-load snapshot; a bad or missing file means a cold start,
/// not a dead server (warm-up is an optimization, never a requirement).
void serve_cache_load(serve::PlanService& service, const std::string& path) {
  if (path.empty()) return;
  const serve::SnapshotLoadResult result =
      serve::load_cache_snapshot(service.cache(), path);
  if (!result.ok) {
    std::fprintf(stderr, "warning: cache snapshot %s not loaded: %s\n",
                 path.c_str(), result.error.c_str());
    return;
  }
  std::fprintf(stderr, "cache warm-up: %zu entries loaded from %s",
               result.loaded, path.c_str());
  if (result.rejected > 0) {
    std::fprintf(stderr, " (%zu rejected by fingerprint verification)",
                 result.rejected);
  }
  std::fprintf(stderr, "\n");
}

/// Write the --cache-save snapshot on the way out (any serve mode).
int serve_cache_save(serve::PlanService& service, const std::string& path) {
  if (path.empty()) return 0;
  const serve::SnapshotSaveResult result =
      serve::save_cache_snapshot(service.cache(), path);
  if (!result.ok) {
    std::fprintf(stderr, "error: cache snapshot not saved: %s\n",
                 result.error.c_str());
    return 1;
  }
  std::fprintf(stderr, "cache snapshot: %zu entries (%zu bytes) -> %s\n",
               result.entries, result.bytes, path.c_str());
  return 0;
}

/// Start the --admin telemetry endpoint (any serve mode); nullptr when the
/// flag was not given. `draining` feeds /healthz and must be thread-safe.
std::unique_ptr<serve::net::AdminServer> start_admin(
    const Args& args, std::function<bool()> draining) {
  if (args.admin.empty()) return nullptr;
  const auto host_port = net::parse_host_port(args.admin);
  if (!host_port.has_value()) usage("--admin expects HOST:PORT");
  serve::net::AdminServerOptions options;
  options.host = host_port->first;
  options.port = host_port->second;
  options.draining = std::move(draining);
  auto admin = std::make_unique<serve::net::AdminServer>(options);
  std::fprintf(stderr,
               "madpipe serve: admin endpoint on %s:%u "
               "(/metrics /healthz /slow /tracez)\n",
               options.host.c_str(), admin->port());
  return admin;
}

int cmd_serve_listen(const Args& args, serve::PlanService& service) {
  const auto host_port = net::parse_host_port(args.listen);
  if (!host_port.has_value()) usage("--listen expects HOST:PORT");
  serve::net::NetServerOptions options;
  options.host = host_port->first;
  options.port = host_port->second;
  if (args.net_workers < 0) usage("--net-workers must be >= 0");
  options.dispatch_workers = static_cast<std::size_t>(args.net_workers);
  if (args.rate < 0.0) usage("--rate must be >= 0");
  options.tokens_per_second = args.rate;
  if (args.burst < 1.0) usage("--burst must be >= 1");
  options.token_burst = args.burst;
  if (args.shed_depth < 0) usage("--shed-depth must be >= 0");
  options.shed_queue_depth = static_cast<std::size_t>(args.shed_depth);
  options.edge_triggered = args.edge_triggered;

  serve::net::NetServer server(service, options);
  std::fprintf(stderr, "madpipe serve: listening on %s:%u\n",
               options.host.c_str(), server.port());
  // The admin endpoint outlives the serve loop but not `server`: its
  // /healthz probe flips to draining the moment the shutdown signal lands,
  // before the front-end has finished flushing in-flight responses.
  const auto admin = start_admin(args, [&server] {
    return g_serve_interrupted.load() || server.draining();
  });

  g_serve_interrupted.store(false);
  struct sigaction action {};
  action.sa_handler = serve_signal_handler;
  struct sigaction old_int {}, old_term {};
  sigaction(SIGINT, &action, &old_int);
  sigaction(SIGTERM, &action, &old_term);
  while (!g_serve_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);

  std::fprintf(stderr, "madpipe serve: shutting down\n");
  server.stop();
  const serve::net::NetServerStats stats = server.stats();
  std::fprintf(stderr,
               "madpipe serve: %lld connections, %lld frames, %lld responses,"
               " %lld shed (rate %lld, depth %lld), %lld protocol errors\n",
               stats.accepted, stats.frames, stats.responses,
               stats.shed_rate + stats.shed_depth, stats.shed_rate,
               stats.shed_depth, stats.protocol_errors);
  return 0;
}

int cmd_serve(const Args& args) {
  const ObsSinks sinks(args);
  if (!args.admin.empty()) {
    // Arm tail sampling before the first request so every span tree is
    // complete. Sampling must never change planning results — the loopback
    // tests assert bit-identical plans with it armed vs disarmed.
    if (args.slow_k < 1) usage("--slow-k must be >= 1");
    obs::TailSamplerOptions tail;
    tail.keep_slowest = static_cast<std::size_t>(args.slow_k);
    obs::arm_tail_sampling(tail);
    // /tracez drains the per-thread rings; arm them too unless --trace-out
    // already did (the rings keep the newest events, so a scrape sees the
    // recent span window).
    if (args.trace_out.empty()) obs::install_trace();
  }
  serve::PlanService service(serve_options(args));
  serve_cache_load(service, args.cache_load);

  if (!args.listen.empty()) {
    const int status = cmd_serve_listen(args, service);
    const int save_status = serve_cache_save(service, args.cache_save);
    return status != 0 ? status : save_status;
  }

  // Batch / stdin modes still answer --admin scrapes while they run (no
  // drain probe: these modes exit when their input does).
  const auto admin = start_admin(args, {});

  if (args.stdin_loop) {
    // Line loop: one request document in, one response document out.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::string document_error;
      const std::vector<serve::PlanResponse> responses =
          serve_document(service, line, &document_error);
      if (!document_error.empty()) {
        std::printf("%s\n",
                    serve::response_to_json(
                        serve::error_response("", document_error))
                        .c_str());
      } else if (responses.size() == 1) {
        std::printf("%s\n",
                    serve::response_to_json(responses[0], args.serve_stats)
                        .c_str());
      } else {
        std::printf("%s\n",
                    serve::batch_to_json(responses, service.stats(),
                                         args.serve_stats)
                        .c_str());
      }
      std::fflush(stdout);
    }
    return serve_cache_save(service, args.cache_save);
  }

  std::string requests_path = args.requests_path;
  if (requests_path.empty() && !args.positional.empty())
    requests_path = args.positional[0];
  if (requests_path.empty())
    usage("serve needs --requests FILE (or \"-\" for stdin), or --stdin");
  std::string text;
  if (requests_path == "-") {
    text.assign(std::istreambuf_iterator<char>(std::cin),
                std::istreambuf_iterator<char>());
  } else {
    std::ifstream in(requests_path);
    if (!in.good()) {
      std::fprintf(stderr, "error: cannot read %s\n", requests_path.c_str());
      return 1;
    }
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }

  if (args.repeat < 1) usage("--repeat must be >= 1");
  std::vector<serve::PlanResponse> responses;
  for (int round = 0; round < args.repeat; ++round) {
    std::string document_error;
    responses = serve_document(service, text, &document_error);
    if (!document_error.empty()) {
      std::fprintf(stderr, "error: %s\n", document_error.c_str());
      return 1;
    }
  }
  const std::string output =
      serve::batch_to_json(responses, service.stats(), args.serve_stats);
  if (args.output.empty()) {
    std::printf("%s\n", output.c_str());
  } else {
    write_file(args.output, output);
    std::fprintf(stderr, "wrote %s (%zu responses)\n", args.output.c_str(),
                 responses.size());
  }
  return serve_cache_save(service, args.cache_save);
}

std::string stats_format_double(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

/// Render one madpipe-metrics-v1 dump (see obs::Registry::write_json) as
/// Prometheus-style text. Histograms print interpolated p50/p95/p99
/// estimates (obs::histogram_quantile); `buckets` adds the raw cumulative
/// bucket lines Registry::text() produces.
int render_metrics_dump(const json::Value& root, bool buckets_too) {
  if (!root.is_object()) {
    std::fprintf(stderr, "error: metrics dump must be a JSON object\n");
    return 1;
  }
  const json::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != obs::kMetricsSchema) {
    std::fprintf(stderr, "error: expected schema \"%s\"\n",
                 obs::kMetricsSchema);
    return 1;
  }
  const auto help_of = [](const json::Value& entry) -> std::string {
    const json::Value* help = entry.find("help");
    return help != nullptr && help->is_string() ? help->as_string() : "";
  };
  const auto name_of = [](const json::Value& entry) -> std::string {
    const json::Value* name = entry.find("name");
    return name != nullptr && name->is_string() ? name->as_string() : "";
  };
  std::string out;
  const auto entries_of = [&](const char* key) {
    const json::Value* list = root.find(key);
    return list != nullptr && list->is_array() ? &list->items() : nullptr;
  };
  if (const auto* counters = entries_of("counters")) {
    for (const json::Value& entry : *counters) {
      const std::string name = name_of(entry);
      const json::Value* value = entry.find("value");
      if (name.empty() || value == nullptr || !value->is_number()) continue;
      if (!help_of(entry).empty())
        out += "# HELP " + name + " " + help_of(entry) + "\n";
      out += "# TYPE " + name + " counter\n";
      out += name + " " + stats_format_double(value->as_number()) + "\n";
    }
  }
  if (const auto* gauges = entries_of("gauges")) {
    for (const json::Value& entry : *gauges) {
      const std::string name = name_of(entry);
      const json::Value* value = entry.find("value");
      if (name.empty() || value == nullptr || !value->is_number()) continue;
      if (!help_of(entry).empty())
        out += "# HELP " + name + " " + help_of(entry) + "\n";
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + stats_format_double(value->as_number()) + "\n";
    }
  }
  if (const auto* histograms = entries_of("histograms")) {
    for (const json::Value& entry : *histograms) {
      const std::string name = name_of(entry);
      const json::Value* bounds = entry.find("bounds");
      const json::Value* buckets = entry.find("bucket_counts");
      const json::Value* sum = entry.find("sum");
      const json::Value* count = entry.find("count");
      if (name.empty() || bounds == nullptr || !bounds->is_array() ||
          buckets == nullptr || !buckets->is_array() || sum == nullptr ||
          count == nullptr ||
          buckets->items().size() != bounds->items().size() + 1) {
        continue;
      }
      if (!help_of(entry).empty())
        out += "# HELP " + name + " " + help_of(entry) + "\n";
      out += "# TYPE " + name + " histogram\n";
      std::vector<double> bound_values;
      std::vector<long long> bucket_counts;
      bound_values.reserve(bounds->items().size());
      bucket_counts.reserve(buckets->items().size());
      for (const json::Value& b : bounds->items()) {
        bound_values.push_back(b.as_number());
      }
      for (const json::Value& b : buckets->items()) {
        bucket_counts.push_back(static_cast<long long>(b.as_number()));
      }
      for (const auto& [label, q] :
           {std::pair<const char*, double>{"p50", 0.50},
            {"p95", 0.95},
            {"p99", 0.99}}) {
        out += name + "_" + label + " " +
               stats_format_double(
                   obs::histogram_quantile(bound_values, bucket_counts, q)) +
               "\n";
      }
      if (buckets_too) {
        double cumulative = 0;
        for (std::size_t i = 0; i < bounds->items().size(); ++i) {
          cumulative += buckets->items()[i].as_number();
          out += name + "_bucket{le=\"" +
                 stats_format_double(bounds->items()[i].as_number()) + "\"} " +
                 stats_format_double(cumulative) + "\n";
        }
        cumulative += buckets->items().back().as_number();
        out += name + "_bucket{le=\"+Inf\"} " +
               stats_format_double(cumulative) + "\n";
      }
      out += name + "_sum " + stats_format_double(sum->as_number()) + "\n";
      out += name + "_count " + stats_format_double(count->as_number()) + "\n";
    }
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}

/// `madpipe fleet`: run the discrete-event fleet simulator over a JSON
/// trace (positional) or a seeded synthetic trace, print the human report,
/// and optionally dump the JSON report / raw event log. Exits non-zero when
/// the jobs-in == jobs-out accounting does not close or any job is left
/// stranded — the invariant the CI smoke run asserts.
int cmd_fleet(const Args& args) {
  const ObsSinks sinks(args);
  fleet::FleetTrace trace;
  if (!args.positional.empty()) {
    std::ifstream in(args.positional[0]);
    if (!in.good()) {
      std::fprintf(stderr, "error: cannot read %s\n",
                   args.positional[0].c_str());
      return 1;
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    fleet::FleetTraceParse parse = fleet::fleet_trace_from_json(text);
    if (!parse.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", args.positional[0].c_str(),
                   parse.error.c_str());
      return 1;
    }
    trace = std::move(parse.trace);
    if (fleet::fleet_trace_has_plan_deadlines(trace)) {
      std::fprintf(stderr,
                   "note: trace carries plan_deadline_ms — the degradation "
                   "valve is wall-clock driven, so event logs are not "
                   "guaranteed bit-identical across runs\n");
    }
  } else {
    fleet::SyntheticTraceConfig config;
    config.seed = args.seed;
    config.jobs = args.fleet_jobs;
    config.pool_gpus = args.pool;
    config.memory_gb = args.memory_gb;
    config.bandwidth_gbs = args.bandwidth_gbs;
    trace = fleet::synthesize_fleet_trace(config);
  }

  fleet::FleetOptions options;
  options.policy = args.policy;
  serve::ServiceOptions service_options;
  service_options.workers = static_cast<std::size_t>(args.workers);
  service_options.queue_capacity = static_cast<std::size_t>(args.queue);
  const fleet::FleetResult result =
      fleet::run_fleet(trace, options, service_options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return 1;
  }
  if (!args.json_path.empty()) {
    write_file(args.json_path,
               fleet::fleet_result_to_json(result, /*include_event_log=*/true));
  }
  if (!args.log_out.empty()) {
    std::string log;
    for (const std::string& line : result.event_log) {
      log += line;
      log += '\n';
    }
    write_file(args.log_out, log);
  }
  std::fputs(fleet::fleet_result_report(result).c_str(), stdout);
  if (!result.accounting_exact() || result.stranded > 0) {
    std::fprintf(stderr,
                 "error: accounting violation: %d in != %d completed + %d "
                 "failed + %d stranded\n",
                 result.jobs_in, result.completed, result.failed,
                 result.stranded);
    return 1;
  }
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional.empty()) {
    // No dump file: this process's own registry (empty metrics included, so
    // the output shape is visible even in a fresh process), routed through
    // the same renderer as dump files so quantiles/--buckets behave alike.
    const json::ParseResult parsed =
        json::parse(obs::Registry::global().json());
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: registry dump: %s\n",
                   parsed.error.c_str());
      return 1;
    }
    return render_metrics_dump(parsed.value, args.buckets);
  }
  std::ifstream in(args.positional[0]);
  if (!in.good()) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 args.positional[0].c_str());
    return 1;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const json::ParseResult parsed = json::parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", args.positional[0].c_str(),
                 parsed.error.c_str());
    return 1;
  }
  return render_metrics_dump(parsed.value, args.buckets);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::printf("madpipe %s\n", kVersion);
    return 0;
  }
  try {
    const Args args = parse(argc, argv);
    if (command == "profile") return cmd_profile(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "plan") return cmd_plan(args, /*simulate=*/false);
    if (command == "simulate") return cmd_plan(args, /*simulate=*/true);
    if (command == "hybrid") return cmd_hybrid(args);
    if (command == "solver") return cmd_solver(args);
    if (command == "planner") return cmd_planner(args);
    if (command == "explain") return cmd_explain(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "fleet") return cmd_fleet(args);
    if (command == "stats") return cmd_stats(args);
    usage(("unknown command " + command).c_str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
